"""Dynamic hot-path recut: layout A/B, coalesced-batch equivalence, sizing pins.

Three guarantees from the recut are locked down here:

* **Layout A/B** — the ``dict`` (one object per vertex / per tour entry)
  and ``csr`` (flat struct-of-arrays) state layouts are pure storage
  choices: every dynamic algorithm reaches bit-identical solutions,
  per-update round records and word totals under both.
* **Coalesced batches** — with coalescing on, ``apply_batch`` reaches the
  same solution as sequentially replaying the *normalized* stream
  (:meth:`normalize_batch`), never spends more rounds, and this holds on
  every execution backend including the two-slot resident configuration,
  on plain mixed streams, churn-heavy streams and recorded adversarial
  tree-edge streams.
* **Closed-form sizing** — every message tag registered in
  :mod:`repro.mpc.sizing` charges exactly what the recursive reference
  sizer would on randomized representative payloads, so swapping the
  recursive walk for the closed form cannot move a single word in the
  round records.
"""

from __future__ import annotations

import random

import pytest

from repro.config import DMPCConfig
from repro.dynamic_mpc import (
    DMPCApproxMST,
    DMPCConnectivity,
    DMPCMaximalMatching,
    DMPCThreeHalvesMatching,
    DMPCTwoPlusEpsMatching,
)
from repro.dynamic_mpc.state import VertexStats
from repro.graph import DynamicGraph, batched
from repro.graph.generators import gnm_random_graph, random_weighted_graph
from repro.graph.streams import mixed_stream, tree_edge_adversary_stream
from repro.mpc.layout import DYNAMIC_LAYOUTS
from repro.mpc.sizing import closed_form_words, registered_closed_forms, word_size

BACKENDS = ("reference", "fast", "sharded", "parallel", "process", "resident", "resident-shm")
SHARD_COUNT = 3
MAX_WORKERS = 2


def make_config(n: int, m: int, backend: str | None) -> DMPCConfig:
    extra: dict = {}
    real = backend
    if backend in ("sharded", "parallel", "process", "resident", "resident-shm"):
        extra["shard_count"] = SHARD_COUNT
    if backend in ("parallel", "process", "resident", "resident-shm"):
        extra["max_workers"] = MAX_WORKERS
    if backend == "resident-shm":
        real = "resident"
        extra["resident_slots"] = 2
    return DMPCConfig.for_graph(n, m, backend=real, **extra)


def per_update_rounds(algorithm) -> list[tuple[str, int]]:
    return [(u.label, u.num_rounds) for u in algorithm.ledger.updates]


def canonical(components):
    return sorted(sorted(c) for c in components)


def churn_stream(n: int, num_updates: int, seed: int) -> list:
    """A well-formed stream over few vertices, so batches cancel heavily."""
    return list(mixed_stream(n, num_updates, seed=seed, insert_probability=0.5))


def recorded_adversary(n: int, m: int, num_updates: int, seed: int):
    """Record an adaptive tree-edge adversary stream once, for replays."""
    graph = gnm_random_graph(n, m, seed=seed)
    recorder = DMPCConnectivity(DMPCConfig.for_graph(n, 2 * m))
    recorder.preprocess(graph.copy())
    adaptive = tree_edge_adversary_stream(
        n, num_updates, recorder.spanning_forest, seed=seed + 1, delete_probability=0.6
    )
    adaptive.seed_graph(graph.copy())
    for update in adaptive:
        recorder.apply(update)
    return graph, list(adaptive.history)


# --------------------------------------------------------------- layout A/B
class TestLayoutAB:
    """dict vs csr must be observationally identical on every algorithm."""

    def run_layouts(self, make, graph, stream):
        runs = {}
        for layout in DYNAMIC_LAYOUTS:
            algorithm = make(layout)
            algorithm.preprocess(graph.copy() if graph is not None else DynamicGraph())
            for update in stream:
                algorithm.apply(update)
            runs[layout] = algorithm
        return runs

    def assert_identical_costs(self, runs):
        dict_run, csr_run = runs["dict"], runs["csr"]
        assert per_update_rounds(dict_run) == per_update_rounds(csr_run)
        assert dict_run.update_summary().as_dict() == csr_run.update_summary().as_dict()

    def test_connectivity(self):
        n, m = 32, 64
        graph = gnm_random_graph(n, m, seed=11)
        stream = list(mixed_stream(n, 90, seed=12, insert_probability=0.5, initial=graph))
        runs = self.run_layouts(
            lambda layout: DMPCConnectivity(
                make_config(n, 2 * m, None), layout=layout, check_invariants=True
            ),
            graph,
            stream,
        )
        assert canonical(runs["dict"].components()) == canonical(runs["csr"].components())
        assert runs["dict"].spanning_forest() == runs["csr"].spanning_forest()
        self.assert_identical_costs(runs)

    def test_connectivity_adversarial(self):
        n, m = 24, 36
        graph, stream = recorded_adversary(n, m, 80, seed=13)
        runs = self.run_layouts(
            lambda layout: DMPCConnectivity(make_config(n, 4 * m, None), layout=layout),
            graph,
            stream,
        )
        assert canonical(runs["dict"].components()) == canonical(runs["csr"].components())
        assert runs["dict"].spanning_forest() == runs["csr"].spanning_forest()
        self.assert_identical_costs(runs)

    def test_approx_mst(self):
        n, m = 24, 48
        graph = random_weighted_graph(n, m, seed=14)
        stream = list(mixed_stream(n, 80, seed=15, insert_probability=0.5, initial=graph, weighted=True))
        runs = self.run_layouts(
            lambda layout: DMPCApproxMST(make_config(n, 2 * m, None), epsilon=0.1, layout=layout),
            graph,
            stream,
        )
        assert runs["dict"].spanning_forest() == runs["csr"].spanning_forest()
        self.assert_identical_costs(runs)

    def test_maximal_matching(self):
        n, m = 32, 64
        graph = gnm_random_graph(n, m, seed=16)
        stream = list(mixed_stream(n, 90, seed=17, insert_probability=0.5, initial=graph))
        runs = self.run_layouts(
            lambda layout: DMPCMaximalMatching(
                make_config(n, 2 * m, None), layout=layout, check_invariants=True
            ),
            graph,
            stream,
        )
        assert runs["dict"].matching() == runs["csr"].matching()
        self.assert_identical_costs(runs)

    def test_three_halves_matching(self):
        n = 24
        stream = churn_stream(n, 100, seed=18)
        runs = self.run_layouts(
            lambda layout: DMPCThreeHalvesMatching(make_config(n, 140, None), layout=layout),
            None,
            stream,
        )
        assert runs["dict"].matching() == runs["csr"].matching()
        self.assert_identical_costs(runs)

    def test_two_plus_eps_matching(self):
        n = 24
        stream = churn_stream(n, 100, seed=19)
        runs = self.run_layouts(
            lambda layout: DMPCTwoPlusEpsMatching(make_config(n, 120, None), seed=7, layout=layout),
            None,
            stream,
        )
        assert runs["dict"].matching() == runs["csr"].matching()
        self.assert_identical_costs(runs)


# ------------------------------------------------- coalesced-batch replay
def coalesced_pair(make, graph, stream, batch_size):
    """Batched-with-coalescing vs sequential replay of the normalized stream."""
    batch = make()
    sequential = make()
    for algorithm in (batch, sequential):
        algorithm.preprocess(graph.copy() if graph is not None else DynamicGraph())
    for chunk in batched(stream, batch_size):
        chunk = list(chunk)
        batch.apply_batch(chunk, coalesce=True)
        for update in sequential.normalize_batch(chunk)[0]:
            sequential.apply(update)
    return sequential, batch


class TestCoalescedBatchReplay:
    def test_connectivity_bit_identical_to_normalized_replay(self):
        n = 16  # few vertices → heavy churn → real cancellations
        stream = churn_stream(n, 160, seed=21)
        sequential, batch = coalesced_pair(
            lambda: DMPCConnectivity(make_config(n, 120, None), check_invariants=True),
            None,
            stream,
            16,
        )
        assert canonical(sequential.components()) == canonical(batch.components())
        assert sequential.spanning_forest() == batch.spanning_forest()
        assert batch.update_round_total() <= sequential.update_round_total()
        assert batch.coalesce_totals["input"] == 160
        assert batch.coalesce_totals["output"] < 160  # churn genuinely cancelled
        assert batch.coalesce_totals["cancelled_pairs"] > 0

    def test_connectivity_adversarial_stream(self):
        n, m = 24, 36
        graph, stream = recorded_adversary(n, m, 100, seed=22)
        sequential, batch = coalesced_pair(
            lambda: DMPCConnectivity(make_config(n, 4 * m, None)), graph, stream, 16
        )
        assert canonical(sequential.components()) == canonical(batch.components())
        assert sequential.spanning_forest() == batch.spanning_forest()
        assert batch.update_round_total() <= sequential.update_round_total()

    def test_maximal_matching_bit_identical_to_normalized_replay(self):
        n = 16
        graph = gnm_random_graph(n, 24, seed=23)
        stream = list(mixed_stream(n, 140, seed=24, insert_probability=0.5, initial=graph))
        sequential, batch = coalesced_pair(
            lambda: DMPCMaximalMatching(make_config(n, 120, None), check_invariants=True),
            graph,
            stream,
            16,
        )
        assert sequential.matching() == batch.matching()
        assert batch.update_round_total() <= sequential.update_round_total()

    def test_three_halves_matching(self):
        n = 16
        stream = churn_stream(n, 120, seed=25)
        sequential, batch = coalesced_pair(
            lambda: DMPCThreeHalvesMatching(make_config(n, 100, None)), None, stream, 12
        )
        assert sequential.matching() == batch.matching()
        assert batch.update_round_total() <= sequential.update_round_total()

    def test_two_plus_eps_matching(self):
        n = 16
        stream = churn_stream(n, 120, seed=26)
        sequential, batch = coalesced_pair(
            lambda: DMPCTwoPlusEpsMatching(make_config(n, 100, None), seed=7), None, stream, 12
        )
        assert sequential.matching() == batch.matching()

    def test_approx_mst(self):
        n, m = 20, 40
        graph = random_weighted_graph(n, m, seed=27)
        stream = list(mixed_stream(n, 100, seed=28, insert_probability=0.5, initial=graph, weighted=True))
        sequential, batch = coalesced_pair(
            lambda: DMPCApproxMST(make_config(n, 2 * m, None), epsilon=0.1), graph, stream, 12
        )
        assert sequential.spanning_forest() == batch.spanning_forest()
        assert canonical(sequential.components()) == canonical(batch.components())

    def test_constructor_and_env_toggles(self, monkeypatch):
        n = 12
        stream = churn_stream(n, 40, seed=29)
        explicit = DMPCConnectivity(make_config(n, 60, None), coalesce=True)
        assert explicit.coalesce is True
        monkeypatch.setenv("REPRO_COALESCE_UPDATES", "1")
        from_env = DMPCConnectivity(make_config(n, 60, None))
        assert from_env.coalesce is True
        for chunk in batched(stream, 8):
            from_env.apply_batch(chunk)  # no per-call flag: the env toggle drives it
        assert from_env.last_coalesce_stats is not None
        monkeypatch.delenv("REPRO_COALESCE_UPDATES")
        default = DMPCConnectivity(make_config(n, 60, None))
        assert default.coalesce is False


# ------------------------------------------------ all seven backends
class TestCoalescedAcrossBackends:
    """Coalesced batches are backend-invariant: solutions, rounds and words."""

    def run_all(self, make, graph, stream, batch_size):
        runs = {}
        for backend in BACKENDS:
            algorithm = make(backend)
            algorithm.preprocess(graph.copy() if graph is not None else DynamicGraph())
            for chunk in batched(stream, batch_size):
                algorithm.apply_batch(chunk, coalesce=True)
            runs[backend] = algorithm
        return runs

    def assert_backend_invariant(self, runs, extract, what):
        reference = extract(runs["reference"])
        for backend in BACKENDS[1:]:
            assert extract(runs[backend]) == reference, f"{backend} diverged: {what}"

    def test_connectivity_churn(self):
        n = 16
        stream = churn_stream(n, 96, seed=31)
        runs = self.run_all(
            lambda backend: DMPCConnectivity(make_config(n, 96, backend)), None, stream, 12
        )
        self.assert_backend_invariant(runs, lambda a: canonical(a.components()), "components")
        self.assert_backend_invariant(runs, lambda a: a.spanning_forest(), "spanning forest")
        self.assert_backend_invariant(runs, per_update_rounds, "per-update rounds")
        self.assert_backend_invariant(runs, lambda a: a.update_summary().as_dict(), "update summary")
        self.assert_backend_invariant(runs, lambda a: a.coalesce_totals, "coalesce totals")

    def test_connectivity_adversarial(self):
        n, m = 20, 30
        graph, stream = recorded_adversary(n, m, 80, seed=32)
        runs = self.run_all(
            lambda backend: DMPCConnectivity(make_config(n, 4 * m, backend)), graph, stream, 16
        )
        self.assert_backend_invariant(runs, lambda a: canonical(a.components()), "components")
        self.assert_backend_invariant(runs, lambda a: a.spanning_forest(), "spanning forest")
        self.assert_backend_invariant(runs, per_update_rounds, "per-update rounds")
        self.assert_backend_invariant(runs, lambda a: a.update_summary().as_dict(), "update summary")

    def test_maximal_matching_churn(self):
        n = 16
        graph = gnm_random_graph(n, 24, seed=33)
        stream = list(mixed_stream(n, 96, seed=34, insert_probability=0.5, initial=graph))
        runs = self.run_all(
            lambda backend: DMPCMaximalMatching(make_config(n, 120, backend)), graph, stream, 12
        )
        self.assert_backend_invariant(runs, lambda a: a.matching(), "matching")
        self.assert_backend_invariant(runs, per_update_rounds, "per-update rounds")
        self.assert_backend_invariant(runs, lambda a: a.update_summary().as_dict(), "update summary")


# --------------------------------------------------- closed-form sizing pins
def _stats_entries(rng: random.Random, k: int):
    entries = []
    for _ in range(k):
        stats = VertexStats(
            degree=rng.randrange(10),
            mate=rng.choice([None, rng.randrange(50)]),
            heavy=rng.random() < 0.3,
            alive_machine=rng.choice([None, f"edge-machine-{rng.randrange(12)}"]),
            suspended_machines=[f"suspended-edge-{rng.randrange(40)}" for _ in range(rng.randrange(4))],
            free_neighbors=rng.randrange(5),
        )
        entries.append((rng.randrange(100), stats.as_payload()))
    return entries


#: one randomized representative-payload builder per registered tag, shaped
#: exactly like the payload each protocol send ships
PAYLOAD_BUILDERS = {
    "endpoint-info": lambda rng: tuple(rng.randrange(100) for _ in range(rng.randrange(1, 4))),
    "endpoint-ack": lambda rng: None,
    "path-max-offer": lambda rng: (rng.random(), rng.randrange(50), rng.randrange(50)),
    "stats-query": lambda rng: sorted(rng.sample(range(100), rng.randrange(1, 9))),
    "stats-reply": lambda rng: _stats_entries(rng, rng.randrange(1, 5)),
    "stats-write": lambda rng: _stats_entries(rng, rng.randrange(1, 5)),
    "vertex-reply": lambda rng: {
        "free": rng.choice([None, rng.randrange(50)]),
        "matched": [(rng.randrange(50), rng.randrange(50)) for _ in range(rng.randrange(4))],
    },
    "suspended-reply": lambda rng: rng.choice([None, rng.randrange(50)]),
    "batch-free-reply": lambda rng: [
        (rng.randrange(50), rng.choice([None, rng.randrange(50)])) for _ in range(rng.randrange(1, 7))
    ],
    "neighbor-list-reply": lambda rng: [rng.randrange(100) for _ in range(rng.randrange(7))],
    "counter-delta": lambda rng: [
        (rng.randrange(50), rng.randrange(-3, 4)) for _ in range(rng.randrange(1, 7))
    ],
    "add-edge": lambda rng: (rng.randrange(50), rng.randrange(50)),
    "move-request": lambda rng: rng.randrange(50),
    "fetch-suspended": lambda rng: (rng.randrange(50), rng.randrange(1, 9)),
    "edge-insert": lambda rng: (rng.randrange(50), rng.randrange(50), rng.randrange(4), rng.random() < 0.5),
    "edge-delete": lambda rng: (rng.randrange(50), rng.randrange(50)),
    "enqueue-free": lambda rng: (rng.randrange(50), rng.randrange(4)),
    "notify": lambda rng: [
        (rng.randrange(50), (rng.randrange(50), rng.randrange(4), rng.random() < 0.5))
        for _ in range(rng.randrange(1, 6))
    ],
    "propose": lambda rng: (rng.randrange(50), rng.randrange(50), rng.randrange(4)),
    "propose-reply": lambda rng: rng.random() < 0.5,
}


class TestClosedFormPins:
    def test_every_registered_tag_has_a_payload_builder(self):
        assert set(registered_closed_forms()) == set(PAYLOAD_BUILDERS)

    @pytest.mark.parametrize("tag", sorted(PAYLOAD_BUILDERS))
    def test_closed_form_equals_reference_sizer(self, tag):
        rng = random.Random(hash(tag) & 0xFFFF)
        build = PAYLOAD_BUILDERS[tag]
        for _ in range(50):
            payload = build(rng)
            expected = word_size(tag) + word_size(payload)
            assert closed_form_words(tag, payload) == expected, (
                f"{tag}: closed form diverged from the reference sizer on {payload!r}"
            )
