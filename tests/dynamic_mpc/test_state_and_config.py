"""Unit tests for the deployment configuration and the Section 3 storage fabric."""

from __future__ import annotations

import math

import pytest

from repro.config import DMPCConfig, ExperimentConfig
from repro.dynamic_mpc.state import MatchingFabric, VertexStats
from repro.graph.generators import gnm_random_graph, star_graph
from repro.graph.validation import greedy_maximal_matching
from repro.mpc.cluster import Cluster


class TestDMPCConfig:
    def test_basic_sizing(self):
        config = DMPCConfig(capacity_n=100, capacity_m=300)
        assert config.capacity_N == 400
        assert config.sqrt_N == math.isqrt(399) + 1
        assert config.machine_memory >= config.sqrt_N
        assert config.num_worker_machines >= 2
        assert config.heavy_threshold == max(2, math.isqrt(600))

    def test_worker_count_scales_like_sqrt_N(self):
        small = DMPCConfig(capacity_n=64, capacity_m=128)
        large = DMPCConfig(capacity_n=1024, capacity_m=2048)
        ratio = large.num_worker_machines / small.num_worker_machines
        size_ratio = math.sqrt(large.capacity_N / small.capacity_N)
        assert 0.5 * size_ratio <= ratio <= 2.5 * size_ratio

    def test_validation(self):
        with pytest.raises(ValueError):
            DMPCConfig(capacity_n=0, capacity_m=1)
        with pytest.raises(ValueError):
            DMPCConfig(capacity_n=1, capacity_m=-1)
        with pytest.raises(ValueError):
            DMPCConfig(capacity_n=1, capacity_m=1, memory_slack=0)

    def test_for_graph_constructor(self):
        config = DMPCConfig.for_graph(10, 20)
        assert config.capacity_n == 10
        assert config.capacity_m == 20
        assert not config.strict_memory

    def test_experiment_config_defaults(self):
        exp = ExperimentConfig()
        assert exp.seed == 2019
        assert len(exp.sizes) >= 2


def make_fabric(n: int = 16, m: int = 80) -> MatchingFabric:
    config = DMPCConfig.for_graph(n, m)
    cluster = Cluster(config)
    return MatchingFabric(cluster, config)


class TestMatchingFabric:
    def test_stats_roundtrip(self):
        fabric = make_fabric()
        stats = VertexStats(degree=3, mate=7, heavy=False)
        fabric.store_stats(2, stats)
        loaded = fabric.stats_of(2)
        assert loaded.degree == 3
        assert loaded.mate == 7
        assert fabric.mate_of(2) == 7
        assert not fabric.is_heavy(2)

    def test_query_and_push_stats_use_constant_machines(self):
        fabric = make_fabric()
        fabric.cluster.ledger.begin_update("probe")
        replies = fabric.query_stats([1, 2, 3])
        fabric.push_stats({1: VertexStats(degree=1)})
        fabric.cluster.ledger.end_update()
        assert set(replies) == {1, 2, 3}
        record = fabric.cluster.ledger.updates[-1]
        assert record.num_rounds == 3  # query (2 rounds) + push (1 round)
        assert record.max_active_machines <= 1 + fabric.config.stats_machine_count

    def test_load_initial_graph_places_all_edges(self):
        fabric = make_fabric(n=12, m=60)
        graph = gnm_random_graph(12, 30, seed=4)
        matching = greedy_maximal_matching(graph)
        fabric.load_initial_graph(graph, matching)
        for v in graph.vertices:
            assert set(fabric.all_neighbors(v)) == graph.neighbors(v)
        assert fabric.matching() == matching

    def test_heavy_vertex_split_into_alive_and_suspended(self):
        n = 30
        fabric = make_fabric(n=n, m=n)
        graph = star_graph(n)  # centre degree n-1 >> sqrt(2m)
        fabric.load_initial_graph(graph, {(0, 1)})
        stats = fabric.stats_of(0)
        assert stats.heavy
        assert stats.alive_machine is not None
        assert len(fabric.alive_neighbors(0)) <= fabric.threshold
        assert len(fabric.suspended_neighbors(0)) == (n - 1) - len(fabric.alive_neighbors(0))

    def test_update_vertex_free_neighbor_query_respects_history(self):
        fabric = make_fabric(n=8, m=40)
        graph = gnm_random_graph(8, 12, seed=5)
        fabric.load_initial_graph(graph, set())
        vertex = next(v for v in graph.vertices if graph.degree(v) > 0)
        neighbor = sorted(graph.neighbors(vertex))[0]
        stats = fabric.stats_of(vertex)
        reply = fabric.update_vertex(vertex, stats, query="free-neighbor")
        assert reply["free"] is not None
        # After recording a match for that neighbour, the machine must stop
        # reporting it as free (the history refresh carries the change).
        other = fabric.stats_of(neighbor)
        other.mate = 99
        fabric.record("match", neighbor, 99)
        reply = fabric.update_vertex(vertex, stats, query="free-neighbor", exclude=())
        assert reply["free"] != neighbor or reply["free"] is None or graph.degree(vertex) > 1

    def test_history_round_robin_refresh_bounds_staleness(self):
        fabric = make_fabric(n=10, m=40)
        graph = gnm_random_graph(10, 15, seed=6)
        fabric.load_initial_graph(graph, set())
        before = fabric.coordinator.history.last_seq
        fabric.record("insert", 0, 9)
        fabric.round_robin_refresh()
        assert fabric.coordinator.history.last_seq == before + 1
        # the refreshed machine's seen sequence catches up to the history head
        refreshed = [mid for mid, seq in fabric._machine_seen_seq.items() if seq == fabric.coordinator.history.last_seq]
        assert refreshed

    def test_counter_deltas_clamped_at_zero(self):
        fabric = make_fabric()
        fabric.store_stats(4, VertexStats(free_neighbors=1))
        fabric.push_counter_deltas({4: -5})
        assert fabric.stats_of(4).free_neighbors == 0
        fabric.push_counter_deltas({4: +3})
        assert fabric.stats_of(4).free_neighbors == 3
