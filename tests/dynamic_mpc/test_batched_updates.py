"""Batched update engine: equivalence with sequential application + cost wins.

``apply_batch`` must reach exactly the same solution as per-update ``apply``
on every stream (the batching only merges communication, never reorders
conflicting updates), while spending measurably fewer rounds.
"""

from __future__ import annotations

import pytest

from repro.config import DMPCConfig
from repro.dynamic_mpc import (
    DMPCApproxMST,
    DMPCConnectivity,
    DMPCMaximalMatching,
    DMPCThreeHalvesMatching,
    DMPCTwoPlusEpsMatching,
)
from repro.dynamic_mpc.state import MatchingFabric
from repro.exceptions import ProtocolError
from repro.graph import batched
from repro.graph.generators import gnm_random_graph, random_forest, random_weighted_graph
from repro.graph.streams import mixed_stream, tree_edge_adversary_stream
from repro.graph.validation import connected_components, same_partition
from repro.mpc.cluster import Cluster
from repro.mpc.metrics import MetricsLedger


def canonical(components):
    return sorted(sorted(c) for c in components)


def run_pair(make, graph, stream, batch_size):
    """Run sequential and batched instances over the same stream."""
    sequential = make()
    if graph is not None:
        sequential.preprocess(graph)
    for update in stream:
        sequential.apply(update)
    batch = make()
    if graph is not None:
        batch.preprocess(graph)
    for chunk in batched(stream, batch_size):
        batch.apply_batch(chunk)
    return sequential, batch


class TestBatchedChunker:
    def test_chunks_preserve_order_and_cover_everything(self):
        stream = mixed_stream(16, 50, seed=1)
        chunks = list(batched(stream, 8))
        assert [len(c) for c in chunks] == [8] * 6 + [2]
        assert [u for c in chunks for u in c] == list(stream)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            list(batched([], 0))


class TestLedgerBatchScoping:
    def test_updates_are_tagged_with_the_batch_id(self):
        ledger = MetricsLedger()
        first = ledger.begin_batch()
        ledger.begin_update("a")
        ledger.record_round([])
        ledger.end_update()
        ledger.begin_update("b")
        ledger.record_round([])
        ledger.end_update()
        ledger.end_batch()
        ledger.begin_update("c")
        ledger.record_round([])
        ledger.end_update()
        groups = ledger.batches()
        assert set(groups) == {first}
        assert [r.label for r in groups[first]] == ["a", "b"]
        # One pseudo-update for the batch plus the unbatched record.
        assert ledger.batch_summary().num_updates == 2
        assert ledger.summary().num_updates == 3

    def test_batches_cannot_nest_or_straddle_updates(self):
        ledger = MetricsLedger()
        ledger.begin_batch()
        with pytest.raises(ProtocolError):
            ledger.begin_batch()
        ledger.end_batch()
        ledger.begin_update("a")
        with pytest.raises(ProtocolError):
            ledger.begin_batch()
        ledger.end_update()
        with pytest.raises(ProtocolError):
            ledger.end_batch()

    def test_cluster_batch_scope(self):
        cluster = Cluster(DMPCConfig.for_graph(8, 8))
        with cluster.batch():
            assert cluster.ledger.in_batch
        assert not cluster.ledger.in_batch


class TestBatchedConnectivity:
    def make(self, n, m):
        return lambda: DMPCConnectivity(DMPCConfig.for_graph(n, m))

    @pytest.mark.parametrize("batch_size", [4, 16, 64])
    def test_equivalent_on_mixed_stream_over_connected_graph(self, batch_size):
        n, m = 40, 80
        graph = gnm_random_graph(n, m, seed=31)
        stream = mixed_stream(n, 160, seed=32, insert_probability=0.5, initial=graph)
        sequential, batch = run_pair(self.make(n, 2 * m), graph, stream, batch_size)
        assert canonical(sequential.components()) == canonical(batch.components())
        assert sequential.spanning_forest() == batch.spanning_forest()
        batch.verify_invariants()

    def test_equivalent_on_fragmented_forest(self):
        n = 48
        graph = random_forest(n, num_trees=8, seed=33)
        stream = mixed_stream(n, 160, seed=34, insert_probability=0.5, initial=graph)
        sequential, batch = run_pair(self.make(n, 2 * n), graph, stream, 16)
        assert canonical(sequential.components()) == canonical(batch.components())
        assert sequential.spanning_forest() == batch.spanning_forest()
        assert same_partition(batch.components(), connected_components(batch.shadow))

    def test_equivalent_from_empty_graph(self):
        stream = mixed_stream(24, 200, seed=35, insert_probability=0.65)
        sequential, batch = run_pair(self.make(24, 120), None, stream, 8)
        assert canonical(sequential.components()) == canonical(batch.components())
        assert sequential.spanning_forest() == batch.spanning_forest()

    def test_equivalent_on_tree_edge_adversary_stream(self):
        # Record an adaptive adversarial stream against a sequential run,
        # then replay the recorded history both ways.
        n, m = 24, 36
        graph = gnm_random_graph(n, m, seed=36)
        recorder = DMPCConnectivity(DMPCConfig.for_graph(n, 2 * m))
        recorder.preprocess(graph)
        adaptive = tree_edge_adversary_stream(n, 120, recorder.spanning_forest, seed=37, delete_probability=0.6)
        adaptive.seed_graph(graph)
        for update in adaptive:
            recorder.apply(update)
        stream = list(adaptive.history)
        assert len(stream) == 120
        sequential, batch = run_pair(self.make(n, 2 * m), graph, stream, 16)
        assert canonical(sequential.components()) == canonical(batch.components())
        assert canonical(batch.components()) == canonical(recorder.components())
        assert sequential.spanning_forest() == batch.spanning_forest()

    def test_batching_saves_rounds_on_mixed_stream(self):
        n, m = 40, 80
        graph = gnm_random_graph(n, m, seed=38)
        stream = mixed_stream(n, 160, seed=39, insert_probability=0.5, initial=graph)
        sequential, batch = run_pair(self.make(n, 2 * m), graph, stream, 8)
        assert batch.update_round_total() < sequential.update_round_total()
        # Per-batch ledger scoping: every apply_batch call shows up as a batch.
        assert len(batch.ledger.batches()) == 160 // 8

    def test_apply_sequence_batch_size_argument(self):
        n = 20
        stream = mixed_stream(n, 80, seed=40, insert_probability=0.6)
        alg = DMPCConnectivity(DMPCConfig.for_graph(n, 80))
        alg.apply_sequence(stream, batch_size=10)
        assert same_partition(alg.components(), connected_components(alg.shadow))
        assert len(alg.ledger.batches()) == 8
        with pytest.raises(ValueError):
            alg.apply_sequence(stream, batch_size=0)


class TestBatchedMatching:
    @pytest.mark.parametrize("batch_size", [4, 16])
    def test_maximal_matching_equivalent_and_cheaper(self, batch_size):
        n, m = 36, 72
        graph = gnm_random_graph(n, m, seed=41)
        stream = mixed_stream(n, 150, seed=42, insert_probability=0.5, initial=graph)
        def make():
            return DMPCMaximalMatching(DMPCConfig.for_graph(n, 2 * m))

        sequential, batch = run_pair(make, graph, stream, batch_size)
        assert sequential.matching() == batch.matching()
        assert batch.update_round_total() < sequential.update_round_total()
        batch.verify_invariants()

    def test_three_halves_equivalent_from_empty(self):
        n = 28
        stream = mixed_stream(n, 150, seed=43, insert_probability=0.65)
        def make():
            return DMPCThreeHalvesMatching(DMPCConfig.for_graph(n, 160))

        sequential, batch = run_pair(make, None, stream, 16)
        assert sequential.matching() == batch.matching()
        assert batch.update_round_total() < sequential.update_round_total()
        batch.verify_invariants()

    def test_two_plus_eps_fallback_equivalent(self):
        n = 24
        stream = mixed_stream(n, 120, seed=44, insert_probability=0.6)
        def make():
            return DMPCTwoPlusEpsMatching(DMPCConfig.for_graph(n, 120), seed=7)

        sequential, batch = run_pair(make, None, stream, 8)
        assert sequential.matching() == batch.matching()


class TestBatchedApproxMST:
    def test_sequential_fallback_keeps_the_forest_minimum(self):
        n, m = 24, 48
        graph = random_weighted_graph(n, m, seed=45)
        stream = mixed_stream(n, 100, seed=46, insert_probability=0.5, initial=graph, weighted=True)
        def make():
            return DMPCApproxMST(DMPCConfig.for_graph(n, 2 * m), epsilon=0.1)

        sequential, batch = run_pair(make, graph, stream, 8)
        assert canonical(sequential.components()) == canonical(batch.components())
        assert sequential.spanning_forest() == batch.spanning_forest()
        batch.verify_invariants()


class TestStatsContract:
    def make_fabric(self):
        config = DMPCConfig.for_graph(16, 32)
        cluster = Cluster(config)
        return MatchingFabric(cluster, config)

    def test_stats_of_is_read_only_for_unseen_vertices(self):
        fabric = self.make_fabric()
        stats = fabric.stats_of(3)
        stats.degree = 5  # mutation without store_stats: must not persist
        assert fabric.stats_of(3).degree == 0

    def test_mutate_stats_persists_for_unseen_and_stored_vertices(self):
        fabric = self.make_fabric()
        with fabric.mutate_stats(3) as stats:
            stats.degree = 5
        assert fabric.stats_of(3).degree == 5
        with fabric.mutate_stats(3) as stats:
            stats.mate = 9
        persisted = fabric.stats_of(3)
        assert (persisted.degree, persisted.mate) == (5, 9)

    def test_deferred_refresh_flush_is_one_round(self):
        fabric = self.make_fabric()
        fabric.load_initial_graph(gnm_random_graph(8, 12, seed=47), set())
        ledger = fabric.cluster.ledger
        before = ledger.total_rounds()
        with fabric.batched():
            for _ in range(6):
                fabric.round_robin_refresh()
            assert ledger.total_rounds() == before  # all deferred
            refreshed = fabric.flush_deferred_refreshes()
        assert refreshed >= 1
        assert ledger.total_rounds() == before + 1  # one merged round
