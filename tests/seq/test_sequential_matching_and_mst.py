"""Tests for the sequential dynamic matching algorithms and dynamic MST."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import DynamicGraph
from repro.graph.generators import gnm_random_graph, random_weighted_graph
from repro.graph.validation import (
    is_maximal_matching,
    is_matching,
    is_spanning_forest,
    maximum_matching_size,
    minimum_spanning_forest_weight,
)
from repro.seq import LevelledMatching, NeimanSolomonMatching, SequentialDynamicMST


def random_toggle_sequence(n: int, steps: int, seed: int) -> list[tuple[str, int, int]]:
    rng = random.Random(seed)
    present: set[tuple[int, int]] = set()
    ops = []
    for _ in range(steps):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in present:
            ops.append(("delete", *edge))
            present.discard(edge)
        else:
            ops.append(("insert", *edge))
            present.add(edge)
    return ops


class TestNeimanSolomon:
    def test_insert_matches_free_pairs(self):
        alg = NeimanSolomonMatching(max_edges=32)
        alg.insert(0, 1)
        assert alg.mate(0) == 1
        alg.insert(2, 3)
        assert alg.matching_size() == 2

    def test_delete_rematches(self):
        alg = NeimanSolomonMatching(max_edges=32)
        for (u, v) in [(0, 1), (1, 2), (2, 3)]:
            alg.insert(u, v)
        alg.delete(0, 1)
        shadow = DynamicGraph()
        shadow.insert_edge(1, 2)
        shadow.insert_edge(2, 3)
        assert is_maximal_matching(shadow, alg.matching())

    def test_duplicate_and_missing_edges_rejected(self):
        alg = NeimanSolomonMatching(max_edges=8)
        alg.insert(0, 1)
        with pytest.raises(ValueError):
            alg.insert(1, 0)
        with pytest.raises(ValueError):
            alg.delete(4, 5)

    def test_random_sequence_stays_maximal(self):
        alg = NeimanSolomonMatching(max_edges=400)
        shadow = DynamicGraph(20)
        for (op, u, v) in random_toggle_sequence(20, 500, seed=3):
            if op == "insert":
                alg.insert(u, v)
                shadow.insert_edge(u, v)
            else:
                alg.delete(u, v)
                shadow.delete_edge(u, v)
            assert is_maximal_matching(shadow, alg.matching())

    def test_matching_is_2_approximation(self):
        alg = NeimanSolomonMatching(max_edges=200)
        g = gnm_random_graph(24, 60, seed=5)
        for (u, v) in g.edge_list():
            alg.insert(u, v)
        assert alg.matching_size() * 2 >= maximum_matching_size(g)

    def test_heavy_threshold(self):
        alg = NeimanSolomonMatching(max_edges=50)
        assert alg.threshold == max(2, int((2 * 50) ** 0.5))
        for v in range(1, alg.threshold + 2):
            alg.insert(0, v)
        assert alg.is_heavy(0)
        assert not alg.is_heavy(1)


class TestLevelledMatching:
    def test_random_sequence_stays_maximal(self):
        alg = LevelledMatching(gamma=3.0, seed=11)
        shadow = DynamicGraph(18)
        for (op, u, v) in random_toggle_sequence(18, 400, seed=12):
            if op == "insert":
                alg.insert(u, v)
                shadow.insert_edge(u, v)
            else:
                alg.delete(u, v)
                shadow.delete_edge(u, v)
            assert is_matching(shadow, alg.matching())
            assert is_maximal_matching(shadow, alg.matching())

    def test_levels_reflect_matching_status(self):
        alg = LevelledMatching()
        alg.insert(0, 1)
        assert alg.level(0) >= 0
        alg.delete(0, 1)
        assert alg.level(0) == -1
        assert alg.max_level() == -1

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            LevelledMatching(gamma=1.0)


class TestSequentialDynamicMST:
    def test_matches_kruskal_under_insertions(self):
        g = random_weighted_graph(18, 50, seed=21)
        alg = SequentialDynamicMST()
        for (u, v, w) in g.weighted_edges():
            alg.insert(u, v, w)
        assert abs(alg.forest_weight() - minimum_spanning_forest_weight(g)) < 1e-9
        assert is_spanning_forest(g, alg.forest_edges())

    def test_matches_kruskal_under_mixed_updates(self):
        rng = random.Random(31)
        alg = SequentialDynamicMST()
        shadow = DynamicGraph(14)
        present: list[tuple[int, int]] = []
        for step in range(300):
            if present and rng.random() < 0.4:
                u, v = present.pop(rng.randrange(len(present)))
                alg.delete(u, v)
                shadow.delete_edge(u, v)
            else:
                u, v = rng.randrange(14), rng.randrange(14)
                if u == v or shadow.has_edge(u, v):
                    continue
                w = rng.uniform(1, 100)
                alg.insert(u, v, w)
                shadow.insert_edge(u, v, w)
                present.append((u, v))
            if step % 25 == 0:
                assert abs(alg.forest_weight() - minimum_spanning_forest_weight(shadow)) < 1e-9
        assert abs(alg.forest_weight() - minimum_spanning_forest_weight(shadow)) < 1e-9

    def test_errors_on_bad_updates(self):
        alg = SequentialDynamicMST()
        alg.insert(0, 1, 1.0)
        with pytest.raises(ValueError):
            alg.insert(0, 1, 2.0)
        with pytest.raises(ValueError):
            alg.delete(3, 4)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=1, max_size=40))
def test_property_sequential_matchings_stay_valid(pairs):
    """Property: both sequential matchings stay maximal under arbitrary toggles."""
    ns = NeimanSolomonMatching(max_edges=64)
    lm = LevelledMatching(seed=5)
    shadow = DynamicGraph(8)
    for (u, v) in pairs:
        if u == v:
            continue
        if shadow.has_edge(u, v):
            ns.delete(u, v)
            lm.delete(u, v)
            shadow.delete_edge(u, v)
        else:
            ns.insert(u, v)
            lm.insert(u, v)
            shadow.insert_edge(u, v)
    assert is_maximal_matching(shadow, ns.matching())
    assert is_maximal_matching(shadow, lm.matching())
