"""Tests for union-find, Euler-tour trees and HDT dynamic connectivity."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import DynamicGraph
from repro.graph.generators import gnm_random_graph
from repro.graph.validation import connected_components, same_partition
from repro.seq import EulerTourTree, HDTConnectivity, UnionFind


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind(range(5))
        assert uf.num_sets == 5
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.num_sets == 4

    def test_groups(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("c", "d")
        groups = {frozenset(g) for g in uf.groups()}
        assert groups == {frozenset({"a", "b"}), frozenset({"c", "d"})}

    def test_lazy_element_creation(self):
        uf = UnionFind()
        assert uf.find(99) == 99
        assert 99 in uf


class TestEulerTourTree:
    def test_link_cut_connectivity(self):
        ett = EulerTourTree()
        for v in range(6):
            ett.add_vertex(v)
        ett.link(0, 1)
        ett.link(1, 2)
        ett.link(3, 4)
        assert ett.connected(0, 2)
        assert not ett.connected(0, 3)
        assert ett.tree_size(0) == 3
        assert sorted(ett.tree_vertices(2)) == [0, 1, 2]
        ett.cut(1, 2)
        assert not ett.connected(0, 2)
        assert ett.tree_size(2) == 1

    def test_link_connected_raises(self):
        ett = EulerTourTree()
        ett.link(0, 1)
        with pytest.raises(ValueError):
            ett.link(1, 0)

    def test_cut_missing_edge_raises(self):
        ett = EulerTourTree()
        ett.link(0, 1)
        with pytest.raises(ValueError):
            ett.cut(0, 2)

    def test_random_forest_matches_union_find_semantics(self):
        rng = random.Random(13)
        ett = EulerTourTree()
        for v in range(20):
            ett.add_vertex(v)
        edges: list[tuple[int, int]] = []
        adjacency = DynamicGraph(20)
        for _ in range(500):
            if edges and rng.random() < 0.45:
                u, v = edges.pop(rng.randrange(len(edges)))
                ett.cut(u, v)
                adjacency.delete_edge(u, v)
            else:
                u, v = rng.randrange(20), rng.randrange(20)
                if u != v and not ett.connected(u, v):
                    ett.link(u, v)
                    adjacency.insert_edge(u, v)
                    edges.append((u, v))
            assert same_partition(ett.components(), connected_components(adjacency))

    def test_tree_sizes_consistent(self):
        ett = EulerTourTree()
        for v in range(1, 8):
            ett.link(0, v)
        assert ett.tree_size(5) == 8
        assert len(ett.tour(0)) == 8 + 2 * 7  # vertex arcs + two arcs per edge


class TestHDTConnectivity:
    def test_basic_insert_delete(self):
        hdt = HDTConnectivity(6)
        hdt.insert(0, 1)
        hdt.insert(1, 2)
        hdt.insert(0, 2)  # non-tree edge
        assert hdt.connected(0, 2)
        hdt.delete(0, 1)  # tree edge with replacement available
        assert hdt.connected(0, 1)
        hdt.delete(0, 2)
        hdt.delete(1, 2)
        assert not hdt.connected(0, 2)

    def test_duplicate_and_missing_edges_rejected(self):
        hdt = HDTConnectivity(4)
        hdt.insert(0, 1)
        with pytest.raises(ValueError):
            hdt.insert(1, 0)
        with pytest.raises(ValueError):
            hdt.delete(2, 3)

    def test_spanning_forest_is_consistent(self):
        hdt = HDTConnectivity(10)
        g = gnm_random_graph(10, 20, seed=3)
        for (u, v) in g.edge_list():
            hdt.insert(u, v)
        forest = hdt.spanning_forest()
        assert len(forest) == 10 - len(connected_components(g))

    def test_random_updates_match_bfs_reference(self):
        rng = random.Random(2)
        n = 24
        hdt = HDTConnectivity(n)
        shadow = DynamicGraph(n)
        present: list[tuple[int, int]] = []
        for step in range(600):
            if present and rng.random() < 0.45:
                u, v = present.pop(rng.randrange(len(present)))
                hdt.delete(u, v)
                shadow.delete_edge(u, v)
            else:
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v or shadow.has_edge(u, v):
                    continue
                hdt.insert(u, v)
                shadow.insert_edge(u, v)
                present.append((u, v))
            if step % 20 == 0:
                assert same_partition(hdt.components(), connected_components(shadow))
        assert same_partition(hdt.components(), connected_components(shadow))

    def test_operation_counter_increases(self):
        hdt = HDTConnectivity(8)
        before = hdt.operations
        hdt.insert(0, 1)
        assert hdt.operations > before


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=1, max_size=60))
def test_property_hdt_connectivity_matches_reference(pairs):
    """Property: toggling edges keeps HDT's connectivity equal to BFS connectivity."""
    hdt = HDTConnectivity(10)
    shadow = DynamicGraph(10)
    for (u, v) in pairs:
        if u == v:
            continue
        if shadow.has_edge(u, v):
            hdt.delete(u, v)
            shadow.delete_edge(u, v)
        else:
            hdt.insert(u, v)
            shadow.insert_edge(u, v)
    assert same_partition(hdt.components(), connected_components(shadow))
