"""The index-arithmetic Euler-tour forest must agree with the explicit one."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.eulertour import EulerTourForest, IndexedEulerTourForest


def assert_equivalent(indexed: IndexedEulerTourForest, reference: EulerTourForest, vertices: range) -> None:
    for v in vertices:
        assert indexed.component_vertices(v) == reference.component_vertices(v)
        assert indexed.first_appearance(v) == reference.first_appearance(v)
        assert indexed.last_appearance(v) == reference.last_appearance(v)
        assert sorted(indexed.indexes(v)) == sorted(reference.indexes(v))
    indexed.check_invariants()


class TestFigure1Indexed:
    def test_insert_e_g_matches_paper(self):
        indexed = IndexedEulerTourForest(range(7))
        for (u, v) in [(1, 4), (1, 2), (2, 3), (0, 5), (5, 6)]:
            indexed.link(u, v)
        indexed.link(6, 4)
        assert indexed.tour(0) == [0, 5, 5, 6, 6, 4, 4, 1, 1, 2, 2, 3, 3, 2, 2, 1, 1, 4, 4, 6, 6, 5, 5, 0]

    def test_cut_a_b_matches_paper(self):
        indexed = IndexedEulerTourForest(range(7))
        for (u, v) in [(0, 5), (5, 6), (0, 1), (1, 4), (1, 2), (2, 3)]:
            indexed.link(u, v)
        indexed.cut(0, 1)
        assert indexed.tour(1) == [1, 2, 2, 3, 3, 2, 2, 1, 1, 4, 4, 1]
        assert indexed.tour(0) == [0, 5, 5, 6, 6, 5, 5, 0]
        assert not indexed.connected(0, 1)


class TestAgainstReference:
    def test_random_operations_agree_with_reference(self):
        rng = random.Random(11)
        n = 24
        indexed = IndexedEulerTourForest(range(n))
        reference = EulerTourForest(range(n))
        edges: list[tuple[int, int]] = []
        for _ in range(500):
            op = rng.random()
            if edges and op < 0.35:
                u, v = edges.pop(rng.randrange(len(edges)))
                indexed.cut(u, v)
                reference.cut(u, v)
            elif op < 0.45 and edges:
                r = rng.randrange(n)
                indexed.reroot(r)
                reference.reroot(r)
            else:
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v and not indexed.connected(u, v):
                    indexed.link(u, v)
                    reference.link(u, v)
                    edges.append((u, v))
            assert {frozenset(c) for c in indexed.components()} == {
                frozenset(c) for c in reference.components()
            }
        assert_equivalent(indexed, reference, range(n))

    def test_ancestor_queries_agree(self):
        rng = random.Random(3)
        n = 16
        indexed = IndexedEulerTourForest(range(n))
        reference = EulerTourForest(range(n))
        for v in range(1, n):
            p = rng.randrange(v)
            indexed.link(p, v)
            reference.link(p, v)
        for u in range(n):
            for v in range(n):
                assert indexed.is_ancestor(u, v) == reference.is_ancestor(u, v)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 11), st.integers(0, 11)), min_size=1, max_size=40), st.randoms(use_true_random=False))
def test_property_random_forests_stay_consistent(pairs, pyrandom):
    """Property: any sequence of valid links/cuts keeps both structures identical."""
    indexed = IndexedEulerTourForest(range(12))
    reference = EulerTourForest(range(12))
    edges: list[tuple[int, int]] = []
    for (u, v) in pairs:
        if u == v:
            continue
        if indexed.connected(u, v):
            if edges and pyrandom.random() < 0.7:
                a, b = edges.pop(pyrandom.randrange(len(edges)))
                indexed.cut(a, b)
                reference.cut(a, b)
            continue
        indexed.link(u, v)
        reference.link(u, v)
        edges.append((u, v))
    assert_equivalent(indexed, reference, range(12))
