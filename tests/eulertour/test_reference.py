"""Unit tests for the explicit-sequence Euler-tour forest."""

from __future__ import annotations

import random

import pytest

from repro.eulertour import EulerTourForest


def build_figure1_forest() -> EulerTourForest:
    """The forest of Figure 1(i): tree rooted at b (children c, e; c's child d)
    and tree rooted at a (child f; f's child g).  Vertices are encoded as
    a=0, b=1, c=2, d=3, e=4, f=5, g=6.  The link order is chosen so the
    resulting tours are exactly the ones printed in the figure."""
    forest = EulerTourForest(range(7))
    forest.link(1, 4)  # b - e
    forest.link(1, 2)  # b - c
    forest.link(2, 3)  # c - d
    forest.link(0, 5)  # a - f
    forest.link(5, 6)  # f - g
    return forest


class TestBasics:
    def test_singleton_has_empty_tour(self):
        forest = EulerTourForest([7])
        assert forest.tour(7) == []
        assert forest.tour_length(7) == 0
        assert forest.first_appearance(7) == 0
        assert forest.root(7) == 7

    def test_add_vertex_is_idempotent(self):
        forest = EulerTourForest()
        forest.add_vertex(3)
        comp = forest.component_of(3)
        forest.add_vertex(3)
        assert forest.component_of(3) == comp

    def test_link_creates_tour_of_length_4(self):
        forest = EulerTourForest([0, 1])
        forest.link(0, 1)
        assert forest.tour(0) == [0, 1, 1, 0]
        assert forest.tour_length(0) == 4

    def test_link_same_component_raises(self):
        forest = EulerTourForest([0, 1, 2])
        forest.link(0, 1)
        forest.link(1, 2)
        with pytest.raises(ValueError):
            forest.link(0, 2)

    def test_cut_non_tree_edge_raises(self):
        forest = EulerTourForest([0, 1, 2])
        forest.link(0, 1)
        with pytest.raises(ValueError):
            forest.cut(1, 2)

    def test_connected_and_components(self):
        forest = build_figure1_forest()
        assert forest.connected(1, 3)
        assert not forest.connected(1, 0)
        comps = {frozenset(c) for c in forest.components()}
        assert comps == {frozenset({1, 2, 3, 4}), frozenset({0, 5, 6})}

    def test_tree_edges_tracked(self):
        forest = build_figure1_forest()
        assert forest.has_tree_edge(1, 2)
        assert forest.has_tree_edge(2, 1)
        assert not forest.has_tree_edge(0, 1)


class TestFigure1:
    """Figure 1 of the paper, step by step (vertices a..g -> 0..6)."""

    def test_panel_i_tours(self):
        forest = build_figure1_forest()
        # Euler tour 1: [b,c,c,d,d,c,c,b,b,e,e,b]
        assert forest.tour(1) == [1, 2, 2, 3, 3, 2, 2, 1, 1, 4, 4, 1]
        # Euler tour 2: [a,f,f,g,g,f,f,a]
        assert forest.tour(0) == [0, 5, 5, 6, 6, 5, 5, 0]
        # Bracket values from the figure.
        assert (forest.first_appearance(1), forest.last_appearance(1)) == (1, 12)
        assert (forest.first_appearance(2), forest.last_appearance(2)) == (2, 7)
        assert (forest.first_appearance(3), forest.last_appearance(3)) == (4, 5)
        assert (forest.first_appearance(4), forest.last_appearance(4)) == (10, 11)

    def test_panel_ii_reroot_at_e(self):
        forest = build_figure1_forest()
        forest.reroot(4)
        # Euler tour 1 after rerooting at e: [e,b,b,c,c,d,d,c,c,b,b,e]
        assert forest.tour(4) == [4, 1, 1, 2, 2, 3, 3, 2, 2, 1, 1, 4]
        assert (forest.first_appearance(4), forest.last_appearance(4)) == (1, 12)
        assert (forest.first_appearance(1), forest.last_appearance(1)) == (2, 11)
        assert (forest.first_appearance(2), forest.last_appearance(2)) == (4, 9)
        assert (forest.first_appearance(3), forest.last_appearance(3)) == (6, 7)

    def test_panel_iii_insert_edge_e_g(self):
        forest = build_figure1_forest()
        # insert (e, g): g is in the tree of a, e becomes the root of its tree first.
        forest.link(6, 4)  # x = g, y = e
        expected = [0, 5, 5, 6, 6, 4, 4, 1, 1, 2, 2, 3, 3, 2, 2, 1, 1, 4, 4, 6, 6, 5, 5, 0]
        assert forest.tour(0) == expected
        assert forest.tour_length(0) == 24
        # Bracket values from Figure 1(iii).
        assert (forest.first_appearance(0), forest.last_appearance(0)) == (1, 24)
        assert (forest.first_appearance(5), forest.last_appearance(5)) == (2, 23)
        assert (forest.first_appearance(6), forest.last_appearance(6)) == (4, 21)
        assert (forest.first_appearance(4), forest.last_appearance(4)) == (6, 19)
        assert (forest.first_appearance(1), forest.last_appearance(1)) == (8, 17)
        assert (forest.first_appearance(2), forest.last_appearance(2)) == (10, 15)
        assert (forest.first_appearance(3), forest.last_appearance(3)) == (12, 13)


class TestFigure2:
    """Figure 2 of the paper: deleting tree edge (a, b) splits the tour."""

    def build(self) -> EulerTourForest:
        # Single tree rooted at a: a-(b, f); b-(c, e); c-d; f-g.  The link
        # order reproduces the exact tour printed in the figure.
        forest = EulerTourForest(range(7))
        forest.link(0, 5)  # a - f
        forest.link(5, 6)  # f - g
        forest.link(0, 1)  # a - b
        forest.link(1, 4)  # b - e
        forest.link(1, 2)  # b - c
        forest.link(2, 3)  # c - d
        return forest

    def test_initial_tour(self):
        forest = self.build()
        expected = [0, 1, 1, 2, 2, 3, 3, 2, 2, 1, 1, 4, 4, 1, 1, 0, 0, 5, 5, 6, 6, 5, 5, 0]
        assert forest.tour(0) == expected
        assert (forest.first_appearance(1), forest.last_appearance(1)) == (2, 15)

    def test_delete_edge_a_b(self):
        forest = self.build()
        forest.cut(0, 1)
        # Euler tour 1: [b,c,c,d,d,c,c,b,b,e,e,b]; Euler tour 2: [a,f,f,g,g,f,f,a]
        assert forest.tour(1) == [1, 2, 2, 3, 3, 2, 2, 1, 1, 4, 4, 1]
        assert forest.tour(0) == [0, 5, 5, 6, 6, 5, 5, 0]
        assert not forest.connected(0, 1)
        forest.check_invariants()


class TestRandomized:
    def test_random_link_cut_sequence_preserves_invariants(self):
        rng = random.Random(5)
        forest = EulerTourForest(range(30))
        edges: list[tuple[int, int]] = []
        for _ in range(400):
            if edges and rng.random() < 0.4:
                u, v = edges.pop(rng.randrange(len(edges)))
                forest.cut(u, v)
            else:
                u, v = rng.randrange(30), rng.randrange(30)
                if u != v and not forest.connected(u, v):
                    forest.link(u, v)
                    edges.append((u, v))
            forest.check_invariants()

    def test_reroot_preserves_component_and_length(self):
        rng = random.Random(9)
        forest = EulerTourForest(range(12))
        for v in range(1, 12):
            forest.link(rng.randrange(v), v)
        before = forest.component_vertices(0)
        length = forest.tour_length(0)
        for r in range(12):
            forest.reroot(r)
            assert forest.root(r) == r
            assert forest.component_vertices(0) == before
            assert forest.tour_length(0) == length
            forest.check_invariants()
