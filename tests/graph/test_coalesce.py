"""Update-stream coalescing: net-effect semantics, idempotence, grouping.

:func:`coalesce_updates` may drop and merge updates but never change the
*final graph* a batch produces: replaying the survivors from the batch's
pre-state must reach exactly the edge set (and, on well-formed streams,
the weights) that replaying the raw batch reaches.  These are the
property tests the coalescer's docstring promises, plus golden unit
tests for each cancellation rule and for the env/argument toggle.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import DynamicGraph, GraphUpdate
from repro.graph.generators import gnm_random_graph
from repro.graph.streams import mixed_stream
from repro.graph.updates import (
    COALESCE_ENV_VAR,
    coalesce_updates,
    group_updates_by_owner,
    resolve_coalesce,
)

I = GraphUpdate.insert
D = GraphUpdate.delete


def lenient_replay(graph: DynamicGraph, updates) -> DynamicGraph:
    """Replay a (possibly ill-formed) stream; no-op inserts/deletes are skipped."""
    g = graph.copy()
    for upd in updates:
        if upd.is_insert:
            g.insert_edge(upd.u, upd.v, upd.weight)
        else:
            g.delete_edge(upd.u, upd.v)
    return g


# Arbitrary (possibly ill-formed) streams over a small vertex universe, so
# the same edge is touched many times and every cancellation rule fires.
updates_strategy = st.lists(
    st.builds(
        lambda op, u, v, w: GraphUpdate(op, u, v + (v >= u), w),
        st.sampled_from(["insert", "delete"]),
        st.integers(0, 5),
        st.integers(0, 4),
        st.floats(0.5, 4.0, allow_nan=False),
    ),
    max_size=40,
)


class TestCoalesceProperties:
    @settings(max_examples=200, deadline=None)
    @given(updates_strategy)
    def test_survivors_reach_the_same_edge_set(self, stream):
        survivors, stats = coalesce_updates(stream)
        raw = lenient_replay(DynamicGraph(), stream)
        net = lenient_replay(DynamicGraph(), survivors)
        assert raw.edge_list() == net.edge_list()
        assert stats["input"] == len(stream)
        assert stats["output"] == len(survivors) <= len(stream)

    @pytest.mark.parametrize("seed", range(8))
    def test_survivors_reach_the_same_edge_set_from_nonempty_prestate(self, seed):
        # Cancellation assumes the batch is well-formed w.r.t. its pre-state
        # (an insert of an already-present edge is a raw no-op the coalescer
        # would treat as real), so the non-empty pre-state property is
        # checked on well-formed streams — the only kind the algorithms see.
        base = gnm_random_graph(8, 12, seed=5)
        stream = list(mixed_stream(8, 100, seed=seed, insert_probability=0.5, initial=base))
        survivors, _ = coalesce_updates(stream)
        assert lenient_replay(base, stream).edge_list() == lenient_replay(base, survivors).edge_list()

    @settings(max_examples=200, deadline=None)
    @given(updates_strategy)
    def test_idempotent(self, stream):
        survivors, _ = coalesce_updates(stream)
        again, stats = coalesce_updates(survivors)
        assert again == survivors
        assert stats["cancelled_pairs"] == 0
        assert stats["deduped"] == 0

    @settings(max_examples=200, deadline=None)
    @given(updates_strategy)
    def test_at_most_two_survivors_per_edge_in_first_touch_order(self, stream):
        survivors, stats = coalesce_updates(stream)
        per_edge: dict[tuple[int, int], list[str]] = {}
        first_touch = []
        for upd in survivors:
            if upd.edge not in per_edge:
                first_touch.append(upd.edge)
            per_edge.setdefault(upd.edge, []).append(upd.op)
        for ops in per_edge.values():
            # the only two-survivor shape is a delete followed by an insert
            assert ops in (["insert"], ["delete"], ["delete", "insert"])
        raw_order = []
        for upd in stream:
            if upd.edge in per_edge and upd.edge not in raw_order:
                raw_order.append(upd.edge)
        assert first_touch == raw_order
        assert stats["edges"] == len({u.edge for u in stream})

    def test_well_formed_stream_preserves_weights_exactly(self):
        # On a well-formed stream (what mixed_stream generates: no duplicate
        # inserts, no deletes of absent edges) the survivors reproduce the
        # final weights too, not just the edge set.
        graph = gnm_random_graph(10, 15, seed=6)
        stream = list(mixed_stream(10, 120, seed=7, insert_probability=0.5, initial=graph))
        survivors, _ = coalesce_updates(stream)
        raw = lenient_replay(graph, stream)
        net = lenient_replay(graph, survivors)
        assert raw.edge_list() == net.edge_list()
        assert sorted(raw.weighted_edges()) == sorted(net.weighted_edges())


class TestCancellationRules:
    def test_insert_then_delete_cancels(self):
        survivors, stats = coalesce_updates([I(1, 2), D(1, 2)])
        assert survivors == []
        assert stats["cancelled_pairs"] == 1

    def test_insert_over_insert_keeps_the_last(self):
        survivors, stats = coalesce_updates([I(1, 2, weight=1.0), I(2, 1, weight=9.0)])
        assert survivors == [I(2, 1, weight=9.0)]
        assert stats["deduped"] == 1

    def test_consecutive_deletes_dedupe_to_one(self):
        survivors, stats = coalesce_updates([D(1, 2), D(2, 1)])
        assert survivors == [D(2, 1)]  # same-op runs keep the latest copy
        assert stats["deduped"] == 1

    def test_delete_insert_delete_keeps_the_first_delete(self):
        survivors, stats = coalesce_updates([D(1, 2), I(1, 2), D(1, 2)])
        assert survivors == [D(1, 2)]
        assert stats["cancelled_pairs"] == 1

    def test_delete_then_insert_keeps_both_in_order(self):
        survivors, _ = coalesce_updates([D(1, 2), I(1, 2, weight=3.0)])
        assert survivors == [D(1, 2), I(1, 2, weight=3.0)]

    def test_full_churn_collapses_to_net_effect(self):
        # D I D I on one edge nets to (delete, final insert)
        stream = [D(1, 2), I(1, 2, weight=1.0), D(1, 2), I(1, 2, weight=7.0)]
        survivors, stats = coalesce_updates(stream)
        assert survivors == [D(1, 2), I(1, 2, weight=7.0)]
        assert stats["cancelled_pairs"] == 1
        stream = [I(1, 2), D(1, 2), I(1, 2), D(1, 2)]
        assert coalesce_updates(stream)[0] == []

    def test_distinct_edges_do_not_interact(self):
        stream = [I(1, 2), I(3, 4), D(1, 2)]
        survivors, _ = coalesce_updates(stream)
        assert survivors == [I(3, 4)]


class TestOwnerGrouping:
    @staticmethod
    def owner(v: int) -> str:
        return f"m{v % 3}"

    @settings(max_examples=150, deadline=None)
    @given(updates_strategy)
    def test_grouping_is_a_permutation_preserving_per_edge_order(self, stream):
        survivors, _ = coalesce_updates(stream)
        grouped = group_updates_by_owner(survivors, self.owner)
        assert sorted(grouped, key=repr) == sorted(survivors, key=repr)
        for edge in {u.edge for u in survivors}:
            assert [u.op for u in grouped if u.edge == edge] == [
                u.op for u in survivors if u.edge == edge
            ]

    @settings(max_examples=150, deadline=None)
    @given(updates_strategy)
    def test_grouped_stream_reaches_the_same_edge_set(self, stream):
        survivors, _ = coalesce_updates(stream)
        grouped = group_updates_by_owner(survivors, self.owner)
        assert (
            lenient_replay(DynamicGraph(), grouped).edge_list()
            == lenient_replay(DynamicGraph(), survivors).edge_list()
        )

    def test_groups_are_contiguous_and_unordered_on_endpoints(self):
        stream = [I(0, 3), I(1, 2), I(3, 0 + 6), I(2, 1 + 6)]  # keys m0-m0, m1-m2 alternating
        grouped = group_updates_by_owner(stream, self.owner)
        keys = []
        for upd in grouped:
            a, b = self.owner(upd.u), self.owner(upd.v)
            keys.append((a, b) if a <= b else (b, a))
        # same machine-pair keys must be adjacent (stable partition)
        assert keys == sorted(keys, key=keys.index)
        seen = set()
        for i, key in enumerate(keys):
            if key in seen:
                assert keys[i - 1] == key
            seen.add(key)


class TestResolveCoalesce:
    def test_defaults_off(self, monkeypatch):
        monkeypatch.delenv(COALESCE_ENV_VAR, raising=False)
        assert resolve_coalesce() is False
        assert resolve_coalesce(None) is False

    @pytest.mark.parametrize("raw", ["1", "true", "TRUE", " on ", "yes"])
    def test_env_truthy_values(self, monkeypatch, raw):
        monkeypatch.setenv(COALESCE_ENV_VAR, raw)
        assert resolve_coalesce() is True

    @pytest.mark.parametrize("raw", ["", "0", "false", "off", "no", "garbage"])
    def test_env_falsy_values(self, monkeypatch, raw):
        monkeypatch.setenv(COALESCE_ENV_VAR, raw)
        assert resolve_coalesce() is False

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv(COALESCE_ENV_VAR, "1")
        assert resolve_coalesce(False) is False
        monkeypatch.setenv(COALESCE_ENV_VAR, "0")
        assert resolve_coalesce(True) is True
