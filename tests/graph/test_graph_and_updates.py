"""Unit tests for the dynamic graph container and update sequences."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import DynamicGraph, GraphUpdate, UpdateSequence
from repro.graph.generators import gnm_random_graph


class TestDynamicGraph:
    def test_insert_and_delete_edges(self):
        g = DynamicGraph()
        assert g.insert_edge(1, 2)
        assert not g.insert_edge(2, 1)  # duplicate
        assert g.has_edge(2, 1)
        assert g.num_edges == 1
        assert g.degree(1) == 1
        assert g.delete_edge(1, 2)
        assert not g.delete_edge(1, 2)
        assert g.num_edges == 0

    def test_self_loops_rejected(self):
        g = DynamicGraph()
        with pytest.raises(ValueError):
            g.insert_edge(3, 3)

    def test_weights(self):
        g = DynamicGraph()
        g.insert_edge(0, 1, 2.5)
        assert g.weight(1, 0) == 2.5
        with pytest.raises(KeyError):
            g.weight(0, 2)
        assert g.weight(0, 2, default=9.0) == 9.0

    def test_vertices_created_implicitly(self):
        g = DynamicGraph(3)
        g.insert_edge(5, 6)
        assert g.num_vertices == 5
        assert g.vertices == [0, 1, 2, 5, 6]

    def test_copy_is_independent(self):
        g = DynamicGraph()
        g.insert_edge(0, 1)
        h = g.copy()
        h.delete_edge(0, 1)
        assert g.has_edge(0, 1)

    def test_subgraph(self):
        g = gnm_random_graph(10, 20, seed=1)
        sub = g.subgraph(range(5))
        for (u, v) in sub.edges():
            assert u < 5 and v < 5
            assert g.has_edge(u, v)

    def test_input_size(self):
        g = gnm_random_graph(8, 12, seed=2)
        assert g.input_size == 8 + 12


class TestGraphUpdate:
    def test_constructors_and_properties(self):
        ins = GraphUpdate.insert(3, 1, 2.0)
        assert ins.is_insert and not ins.is_delete
        assert ins.edge == (1, 3)
        dele = GraphUpdate.delete(4, 2)
        assert dele.is_delete
        assert dele.dmpc_words() == 4

    def test_invalid_updates_rejected(self):
        with pytest.raises(ValueError):
            GraphUpdate("swap", 1, 2)
        with pytest.raises(ValueError):
            GraphUpdate.insert(1, 1)


class TestUpdateSequence:
    def test_counts_and_replay(self):
        seq = UpdateSequence([GraphUpdate.insert(0, 1), GraphUpdate.insert(1, 2), GraphUpdate.delete(0, 1)])
        assert len(seq) == 3
        assert seq.num_inserts == 2
        assert seq.num_deletes == 1
        final = seq.final_graph()
        assert final.has_edge(1, 2) and not final.has_edge(0, 1)
        assert seq.max_vertex() == 2
        assert seq.max_concurrent_edges() == 2

    def test_consistency_check(self):
        good = UpdateSequence([GraphUpdate.insert(0, 1), GraphUpdate.delete(0, 1)])
        assert good.is_consistent()
        bad = UpdateSequence([GraphUpdate.delete(0, 1)])
        assert not bad.is_consistent()
        dup = UpdateSequence([GraphUpdate.insert(0, 1), GraphUpdate.insert(0, 1)])
        assert not dup.is_consistent()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=40))
    def test_property_replay_matches_manual_bookkeeping(self, pairs):
        """Property: replaying a generated consistent sequence tracks a plain set."""
        present: set[tuple[int, int]] = set()
        seq = UpdateSequence()
        for (u, v) in pairs:
            if u == v:
                continue
            edge = (min(u, v), max(u, v))
            if edge in present:
                seq.append(GraphUpdate.delete(*edge))
                present.discard(edge)
            else:
                seq.append(GraphUpdate.insert(*edge))
                present.add(edge)
        assert seq.is_consistent()
        final = seq.final_graph()
        assert set(final.edges()) == present
