"""Property tests for the update-stream generators.

Every generator must (1) produce exactly the requested number of updates or
fail loudly, (2) never delete an absent edge or re-insert a present one, and
(3) be deterministic given the seed.  These pin the bugfixes for the silent
stream shortening on dense graphs and the O(m log m) deletion sampling in
``mixed_stream``.
"""

from __future__ import annotations

import pytest

from repro.graph import (
    gnm_random_graph,
    insert_only_stream,
    matched_edge_adversary_stream,
    mixed_stream,
    sliding_window_stream,
    tree_edge_adversary_stream,
)
from repro.graph.graph import normalize_edge
from repro.graph.streams import _random_absent_edge, _rng


def as_tuples(seq):
    return [(u.op, u.u, u.v) for u in seq]


class TestAbsentEdgeSampling:
    def test_finds_the_single_absent_edge_in_a_near_complete_graph(self):
        n = 12
        present = {(u, v) for u in range(n) for v in range(u + 1, n)}
        missing = (3, 7)
        present.discard(missing)
        for seed in range(10):
            assert _random_absent_edge(_rng(seed), n, present) == missing

    def test_returns_none_only_on_the_complete_graph(self):
        n = 6
        present = {(u, v) for u in range(n) for v in range(u + 1, n)}
        assert _random_absent_edge(_rng(0), n, present) is None
        present.discard((0, 1))
        assert _random_absent_edge(_rng(0), n, present) == (0, 1)

    def test_insert_only_stream_fills_dense_graphs_exactly(self):
        # 6 vertices -> 15 possible edges; the old rejection sampler would
        # silently shorten the stream long before that.
        seq = insert_only_stream(6, 15, seed=1)
        assert len(seq) == 15
        assert seq.is_consistent()
        assert seq.final_graph().num_edges == 15

    def test_insert_only_stream_raises_on_impossible_requests(self):
        with pytest.raises(ValueError):
            insert_only_stream(6, 16, seed=1)

    def test_mixed_stream_survives_saturation(self):
        # Inserts dominate until the 4-vertex graph (6 edges) is complete;
        # the stream must then fall back to deletions, never come up short.
        seq = mixed_stream(4, 100, seed=2, insert_probability=0.9)
        assert len(seq) == 100
        assert seq.is_consistent()

    def test_sliding_window_raises_when_window_cannot_fit(self):
        with pytest.raises(ValueError):
            sliding_window_stream(4, 50, window=10, seed=3)


class TestMixedStreamSampling:
    def test_exact_length_and_consistency(self):
        for seed in range(5):
            seq = mixed_stream(20, 250, seed=seed, insert_probability=0.4)
            assert len(seq) == 250
            assert seq.is_consistent()

    def test_deterministic_across_identical_seeds(self):
        a = mixed_stream(25, 300, seed=7, insert_probability=0.55)
        b = mixed_stream(25, 300, seed=7, insert_probability=0.55)
        assert as_tuples(a) == as_tuples(b)

    def test_initial_graph_edge_order_is_seed_independent(self):
        initial = gnm_random_graph(12, 20, seed=9)
        a = mixed_stream(12, 120, seed=10, insert_probability=0.3, initial=initial)
        b = mixed_stream(12, 120, seed=10, insert_probability=0.3, initial=initial)
        assert as_tuples(a) == as_tuples(b)
        assert a.is_consistent(initial)

    def test_pinned_sequence_for_fixed_seed(self):
        # Regression pin for the swap-pop deletion sampler: any change to the
        # sampling scheme shows up here as a changed sequence.
        seq = mixed_stream(8, 12, seed=42, insert_probability=0.5)
        assert as_tuples(seq) == [
            ("insert", 0, 4),
            ("insert", 1, 2),
            ("delete", 0, 4),
            ("delete", 1, 2),
            ("insert", 0, 3),
            ("delete", 0, 3),
            ("insert", 0, 4),
            ("delete", 0, 4),
            ("insert", 4, 5),
            ("insert", 1, 5),
            ("insert", 0, 7),
            ("delete", 1, 5),
        ]


class TestSlidingWindowProperties:
    def test_exact_length_no_absent_deletions_determinism(self):
        for seed in (0, 1, 2):
            a = sliding_window_stream(30, 200, window=12, seed=seed)
            b = sliding_window_stream(30, 200, window=12, seed=seed)
            assert len(a) == 200
            assert a.is_consistent()  # consistency == no absent deletions
            assert as_tuples(a) == as_tuples(b)


class AdversaryHarness:
    """Drives an adaptive stream against a mutating target set."""

    def __init__(self, cap: int = 5) -> None:
        self.targets: set[tuple[int, int]] = set()
        self.cap = cap

    def __call__(self):
        return self.targets

    def observe(self, update) -> None:
        edge = normalize_edge(update.u, update.v)
        if update.is_delete:
            self.targets.discard(edge)
        elif len(self.targets) < self.cap:
            self.targets.add(edge)


@pytest.mark.parametrize("factory", [matched_edge_adversary_stream, tree_edge_adversary_stream])
class TestAdversaryStreamProperties:
    def test_exact_length_and_no_absent_deletions(self, factory):
        harness = AdversaryHarness()
        stream = factory(10, 150, harness, seed=5, delete_probability=0.6)
        produced = 0
        for update in stream:
            harness.observe(update)
            produced += 1
        assert produced == 150
        assert len(stream.history) == 150
        assert stream.history.is_consistent()

    def test_deterministic_across_identical_seeds(self, factory):
        runs = []
        for _ in range(2):
            harness = AdversaryHarness()
            stream = factory(10, 120, harness, seed=11, delete_probability=0.5)
            for update in stream:
                harness.observe(update)
            runs.append(as_tuples(stream.history))
        assert runs[0] == runs[1]

    def test_tiny_vertex_set_saturates_without_shortening(self, factory):
        # 3 vertices -> 3 possible edges; the stream saturates the complete
        # graph constantly and must still deliver every requested update.
        harness = AdversaryHarness()
        stream = factory(3, 80, harness, seed=13, delete_probability=0.2)
        produced = sum(1 for update in stream if harness.observe(update) is None)
        assert produced == 80
        assert stream.history.is_consistent()
