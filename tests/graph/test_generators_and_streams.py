"""Unit tests for graph generators and update-stream generators."""

from __future__ import annotations

import pytest

from repro.graph import (
    complete_graph,
    erdos_renyi_graph,
    gnm_random_graph,
    grid_graph,
    insert_only_stream,
    insert_then_delete_stream,
    matched_edge_adversary_stream,
    mixed_stream,
    path_graph,
    preferential_attachment_graph,
    random_connected_graph,
    random_forest,
    random_weighted_graph,
    sliding_window_stream,
    star_graph,
)
from repro.graph.validation import connected_components


class TestGenerators:
    def test_gnm_exact_edge_count_and_determinism(self):
        g1 = gnm_random_graph(20, 35, seed=7)
        g2 = gnm_random_graph(20, 35, seed=7)
        assert g1.num_edges == 35
        assert g1.edge_list() == g2.edge_list()

    def test_gnm_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            gnm_random_graph(4, 10)

    def test_erdos_renyi_probability_bounds(self):
        assert erdos_renyi_graph(10, 0.0).num_edges == 0
        assert erdos_renyi_graph(6, 1.0).num_edges == 15
        with pytest.raises(ValueError):
            erdos_renyi_graph(5, 1.5)

    def test_random_forest_is_acyclic_with_right_tree_count(self):
        g = random_forest(30, num_trees=3, seed=4)
        comps = connected_components(g)
        assert len(comps) == 3
        assert g.num_edges == 30 - 3

    def test_random_connected_graph(self):
        g = random_connected_graph(25, extra_edges=10, seed=5)
        assert len(connected_components(g)) == 1
        assert g.num_edges == 24 + 10

    def test_preferential_attachment_degrees_skewed(self):
        g = preferential_attachment_graph(60, attach=2, seed=6)
        degrees = sorted((g.degree(v) for v in g.vertices), reverse=True)
        assert degrees[0] >= 2 * degrees[len(degrees) // 2]

    def test_structured_graphs(self):
        assert path_graph(5).num_edges == 4
        assert star_graph(6).degree(0) == 5
        assert complete_graph(5).num_edges == 10
        grid = grid_graph(3, 4)
        assert grid.num_vertices == 12
        assert grid.num_edges == 3 * 3 + 2 * 4

    def test_random_weighted_graph_weights_in_range(self):
        g = random_weighted_graph(15, 30, seed=8, weight_range=(2.0, 5.0))
        for (_u, _v, w) in g.weighted_edges():
            assert 2.0 <= w <= 5.0


class TestStreams:
    def test_insert_only_stream_consistent(self):
        seq = insert_only_stream(20, 50, seed=1)
        assert seq.num_deletes == 0
        assert seq.is_consistent()

    def test_insert_then_delete_returns_to_empty(self):
        seq = insert_then_delete_stream(15, 30, seed=2)
        assert seq.is_consistent()
        assert seq.final_graph().num_edges == 0

    def test_mixed_stream_respects_ratio_roughly(self):
        seq = mixed_stream(25, 300, seed=3, insert_probability=0.7)
        assert seq.is_consistent()
        assert seq.num_inserts > seq.num_deletes

    def test_mixed_stream_from_initial_graph(self):
        initial = gnm_random_graph(10, 20, seed=4)
        seq = mixed_stream(10, 60, seed=5, insert_probability=0.3, initial=initial)
        assert seq.is_consistent(initial)

    def test_sliding_window_bounds_live_edges(self):
        window = 12
        seq = sliding_window_stream(30, 200, window, seed=6)
        assert seq.is_consistent()
        graph = seq.final_graph()
        assert graph.num_edges <= window

    def test_adaptive_adversary_targets_matched_edges(self):
        matched: set[tuple[int, int]] = set()
        stream = matched_edge_adversary_stream(12, 100, lambda: matched, seed=7, delete_probability=0.6)
        deletions_of_matched = 0
        for update in stream:
            if update.is_delete and update.edge in matched:
                deletions_of_matched += 1
                matched.discard(update.edge)
            elif update.is_insert and len(matched) < 4:
                matched.add(update.edge)
        assert stream.history.is_consistent()
        assert deletions_of_matched > 0
