"""Unit tests for the solution validators (including the blossom oracle)."""

from __future__ import annotations

import pytest

try:
    import networkx as nx
except ImportError:  # pragma: no cover
    nx = None

from repro.graph import DynamicGraph
from repro.graph.generators import complete_graph, gnm_random_graph, path_graph, random_weighted_graph
from repro.graph.validation import (
    connected_components,
    forest_weight,
    greedy_maximal_matching,
    has_length3_augmenting_path,
    is_matching,
    is_maximal_matching,
    is_spanning_forest,
    matching_size,
    maximum_matching_size,
    minimum_spanning_forest_weight,
    same_partition,
)


class TestMatchingValidators:
    def test_is_matching_rejects_shared_vertices_and_missing_edges(self):
        g = path_graph(4)
        assert is_matching(g, {(0, 1), (2, 3)})
        assert not is_matching(g, {(0, 1), (1, 2)})
        assert not is_matching(g, {(0, 3)})

    def test_maximality(self):
        g = path_graph(5)
        assert is_maximal_matching(g, {(1, 2), (3, 4)})
        assert not is_maximal_matching(g, {(1, 2)})  # edge (3,4) uncovered

    def test_greedy_is_maximal(self):
        g = gnm_random_graph(30, 80, seed=1)
        matching = greedy_maximal_matching(g)
        assert is_maximal_matching(g, matching)

    def test_length3_augmenting_path_detection(self):
        # path 0-1-2-3 with the middle edge matched has an augmenting path.
        g = path_graph(4)
        assert has_length3_augmenting_path(g, {(1, 2)})
        assert not has_length3_augmenting_path(g, {(0, 1), (2, 3)})

    def test_maximum_matching_on_known_graphs(self):
        assert maximum_matching_size(path_graph(6)) == 3
        assert maximum_matching_size(path_graph(7)) == 3
        assert maximum_matching_size(complete_graph(6)) == 3
        # odd cycle C5 has maximum matching 2 (needs blossom handling)
        c5 = DynamicGraph()
        for i in range(5):
            c5.insert_edge(i, (i + 1) % 5)
        assert maximum_matching_size(c5) == 2

    def test_petersen_like_blossoms(self):
        # Two triangles joined by a bridge: maximum matching is 3.
        g = DynamicGraph()
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)]:
            g.insert_edge(u, v)
        assert maximum_matching_size(g) == 3

    @pytest.mark.skipif(nx is None, reason="networkx not available")
    def test_maximum_matching_agrees_with_networkx(self):
        for seed in range(5):
            g = gnm_random_graph(18, 40, seed=seed)
            nx_graph = nx.Graph(list(g.edges()))
            expected = len(nx.max_weight_matching(nx_graph, maxcardinality=True))
            assert maximum_matching_size(g) == expected

    def test_matching_size_normalises_orientation(self):
        assert matching_size({(2, 1), (1, 2), (3, 4)}) == 2


class TestConnectivityValidators:
    def test_connected_components_bfs(self):
        g = DynamicGraph(6)
        g.insert_edge(0, 1)
        g.insert_edge(2, 3)
        comps = connected_components(g)
        assert same_partition(comps, [{0, 1}, {2, 3}, {4}, {5}])

    def test_same_partition_detects_differences(self):
        assert not same_partition([{0, 1}], [{0}, {1}])


class TestForestValidators:
    def test_is_spanning_forest(self):
        g = gnm_random_graph(20, 40, seed=3)
        forest = set()
        seen = set()
        for comp in connected_components(g):
            # build a BFS tree per component
            import collections

            root = min(comp)
            seen.add(root)
            queue = collections.deque([root])
            while queue:
                v = queue.popleft()
                for w in g.neighbors(v):
                    if w not in seen:
                        seen.add(w)
                        forest.add((min(v, w), max(v, w)))
                        queue.append(w)
        assert is_spanning_forest(g, forest)
        # dropping one edge breaks the spanning property (unless empty)
        if forest:
            assert not is_spanning_forest(g, set(list(forest)[1:]))

    def test_cycle_rejected(self):
        g = complete_graph(3)
        assert not is_spanning_forest(g, {(0, 1), (1, 2), (0, 2)})

    def test_minimum_spanning_forest_weight_matches_kruskal_by_hand(self):
        g = DynamicGraph()
        g.insert_edge(0, 1, 1.0)
        g.insert_edge(1, 2, 2.0)
        g.insert_edge(0, 2, 5.0)
        g.insert_edge(3, 4, 7.0)
        assert minimum_spanning_forest_weight(g) == 10.0
        assert forest_weight(g, {(0, 1), (1, 2), (3, 4)}) == 10.0

    @pytest.mark.skipif(nx is None, reason="networkx not available")
    def test_msf_weight_agrees_with_networkx(self):
        for seed in range(3):
            g = random_weighted_graph(20, 45, seed=seed)
            nx_graph = nx.Graph()
            for (u, v, w) in g.weighted_edges():
                nx_graph.add_edge(u, v, weight=w)
            expected = sum(d["weight"] for (_u, _v, d) in nx.minimum_spanning_edges(nx_graph, data=True))
            assert abs(minimum_spanning_forest_weight(g) - expected) < 1e-9
