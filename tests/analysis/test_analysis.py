"""Tests for shape classification, Table 1 assembly and comparisons."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    PAPER_TABLE1,
    StaticDynamicComparison,
    Table1Row,
    build_table1_row,
    classify_growth,
    compare_connectivity,
    compare_matching,
    format_table,
    growth_ratio,
)
from repro.config import DMPCConfig
from repro.graph.generators import gnm_random_graph
from repro.graph.streams import mixed_stream
from repro.mpc.metrics import UpdateSummary


class TestShapes:
    def test_classify_constant(self):
        sizes = [64, 128, 256, 512]
        assert classify_growth(sizes, [5, 5, 6, 5]) == "constant"

    def test_classify_log(self):
        sizes = [64, 256, 1024, 4096]
        values = [math.log2(s) for s in sizes]
        assert classify_growth(sizes, values) == "log"

    def test_classify_sqrt(self):
        sizes = [64, 256, 1024, 4096]
        values = [3 * math.sqrt(s) for s in sizes]
        assert classify_growth(sizes, values) == "sqrt"

    def test_classify_linear(self):
        sizes = [64, 256, 1024]
        values = [2 * s for s in sizes]
        assert classify_growth(sizes, values) == "linear"

    def test_growth_ratio_flat_vs_linear(self):
        sizes = [100, 1000]
        assert growth_ratio(sizes, [7, 7]) < 0.2
        assert growth_ratio(sizes, [100, 1000]) > 0.9

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            classify_growth([1], [])
        with pytest.raises(ValueError):
            growth_ratio([1], [1])


class TestTable1:
    def test_paper_table_contains_all_rows(self):
        assert {"maximal-matching", "three-halves-matching", "two-plus-eps-matching", "connectivity", "approx-mst"} <= set(
            PAPER_TABLE1
        )

    def test_build_and_format_row(self):
        summary = UpdateSummary(
            num_updates=10,
            max_rounds=7,
            mean_rounds=5.5,
            max_active_machines=3,
            mean_active_machines=2.5,
            max_words_per_round=40,
            mean_words_per_round=20.0,
            total_words=800,
        )
        row = build_table1_row("maximal-matching", n=64, m=128, sqrt_N=14, summary=summary)
        assert isinstance(row, Table1Row)
        assert row.paper_rounds == "O(1)"
        assert row.measured_max_rounds == 7
        text = format_table([row])
        assert "Maximal matching" in text
        assert "O(sqrt N)" in text
        assert row.as_dict()["measured"]["max_rounds"] == 7


class TestComparisons:
    def test_compare_connectivity_reports_advantages(self):
        graph = gnm_random_graph(24, 36, seed=1)
        updates = mixed_stream(24, 40, seed=2, insert_probability=0.5, initial=graph)
        comparison = compare_connectivity(graph, updates)
        assert isinstance(comparison, StaticDynamicComparison)
        assert comparison.dynamic_max_rounds >= 1
        assert comparison.static_total_words > 0
        assert comparison.communication_advantage > 1.0
        assert "round_advantage" in comparison.as_dict()

    def test_compare_matching_reports_advantages(self):
        graph = gnm_random_graph(20, 40, seed=3)
        updates = mixed_stream(20, 30, seed=4, insert_probability=0.5, initial=graph)
        comparison = compare_matching(graph, updates, config=DMPCConfig.for_graph(20, 120))
        assert comparison.dynamic_max_rounds >= 1
        assert comparison.static_rounds >= 1
        assert comparison.communication_advantage > 0
