"""Cross-module integration tests: all algorithms on one shared workload,
plus the model-limit (E8) check with enforcement switched on."""

from __future__ import annotations


from repro.config import DMPCConfig
from repro.dynamic_mpc import (
    DMPCApproxMST,
    DMPCConnectivity,
    DMPCMaximalMatching,
    DMPCThreeHalvesMatching,
    DMPCTwoPlusEpsMatching,
    SequentialSimulationDMPC,
)
from repro.graph import DynamicGraph
from repro.graph.generators import gnm_random_graph, random_weighted_graph
from repro.graph.streams import mixed_stream
from repro.graph.validation import (
    connected_components,
    is_matching,
    is_maximal_matching,
    is_spanning_forest,
    minimum_spanning_forest_weight,
    same_partition,
)
from repro.seq import HDTConnectivity


def test_all_matching_algorithms_agree_on_validity():
    """The three matching algorithms process the same stream; all outputs are valid."""
    n, updates = 20, 120
    stream = mixed_stream(n, updates, seed=42, insert_probability=0.6)
    config = DMPCConfig.for_graph(n, 160)

    maximal = DMPCMaximalMatching(config)
    maximal.preprocess(DynamicGraph(n))
    maximal.apply_sequence(stream)

    three_halves = DMPCThreeHalvesMatching(DMPCConfig.for_graph(n, 160))
    three_halves.preprocess(DynamicGraph(n))
    three_halves.apply_sequence(stream)

    two_eps = DMPCTwoPlusEpsMatching(DMPCConfig.for_graph(n, 160), seed=7)
    two_eps.preprocess(DynamicGraph(n))
    two_eps.apply_sequence(stream)
    two_eps.drain()

    final = stream.final_graph()
    assert is_maximal_matching(final, maximal.matching())
    assert is_maximal_matching(final, three_halves.matching())
    assert is_matching(final, two_eps.matching())
    # 3/2-approximate matching is never smaller than the maximal one by more
    # than the structural guarantee allows.
    assert 3 * three_halves.matching_size() >= 2 * maximal.matching_size()


def test_connectivity_family_agrees_with_reduction():
    """Euler-tour connectivity and the HDT-through-reduction agree on components."""
    graph = gnm_random_graph(24, 36, seed=5)
    stream = mixed_stream(24, 90, seed=6, insert_probability=0.5, initial=graph)

    euler = DMPCConnectivity(DMPCConfig.for_graph(24, 200))
    euler.preprocess(graph)
    euler.apply_sequence(stream)

    payload = HDTConnectivity(24)
    reduction = SequentialSimulationDMPC(DMPCConfig.for_graph(24, 200), payload)
    reduction.preprocess(graph)
    reduction.apply_sequence(stream)

    reference = connected_components(stream.final_graph(graph))
    assert same_partition(euler.components(), reference)
    assert same_partition(payload.components(), reference)

    # The cost profiles differ exactly as Table 1 says: the Euler-tour
    # algorithm uses few rounds and many machines, the reduction few machines
    # and many rounds.
    euler_summary = euler.update_summary()
    reduction_summary = reduction.update_summary()
    assert euler_summary.max_rounds < reduction_summary.max_rounds
    assert reduction_summary.max_active_machines <= 2 < euler_summary.max_active_machines


def test_mst_tracks_connectivity_and_weight():
    graph = random_weighted_graph(20, 45, seed=9)
    stream = mixed_stream(20, 80, seed=10, insert_probability=0.5, initial=graph, weighted=True)
    mst = DMPCApproxMST(DMPCConfig.for_graph(20, 200), epsilon=0.15)
    mst.preprocess(graph)
    mst.apply_sequence(stream)
    final = stream.final_graph(graph)
    assert is_spanning_forest(final, mst.spanning_forest())
    assert mst.forest_weight() <= 1.15 * minimum_spanning_forest_weight(final) + 1e-9


def test_model_limits_enforced_configuration_runs_clean():
    """E8: with strict memory + I/O caps on, a suitably-provisioned deployment
    still runs the connectivity algorithm without violating the model."""
    n, m = 24, 48
    config = DMPCConfig(capacity_n=n, capacity_m=4 * m, memory_slack=64.0, strict_memory=True)
    graph = gnm_random_graph(n, m, seed=11)
    alg = DMPCConnectivity(config)
    alg.cluster.enforce_io_cap = True
    alg.preprocess(graph)
    stream = mixed_stream(n, 60, seed=12, insert_probability=0.5, initial=graph)
    alg.apply_sequence(stream)
    assert same_partition(alg.components(), connected_components(alg.shadow))
    # every machine stayed within its memory budget
    for machine in alg.cluster.machines():
        assert machine.used_words <= config.machine_memory


def test_total_memory_stays_linear_in_input():
    """Section 2: total memory across machines is O(N)."""
    graph = gnm_random_graph(40, 80, seed=13)
    alg = DMPCConnectivity(DMPCConfig.for_graph(40, 160))
    alg.preprocess(graph)
    total = alg.cluster.total_stored_words
    assert total <= 40 * graph.input_size  # generous constant, but linear
