"""Deliberately-broken superstep programs: one per ``repro.lint`` rule.

Every class here violates exactly the facet of the program contract its
name advertises, so the rule tests can assert each ``RP1xx`` code fires at
the expected program with the expected anchors.  This module is *never*
linted as part of the shipped tree (``python -m repro.lint src/`` stays
clean); it is analyzed explicitly by ``tests/lint/test_lint_rules.py``.

The classes are also importable and runnable (the contract violations are
semantic, not syntactic), so the shadow-oracle regression tests reuse
them to prove the runtime checker and the static analyzer flag the same
defects.
"""

from __future__ import annotations

import os
import random
import time

from repro.mpc.program import SuperstepProgram


class UndeclaredSharedReadProgram(SuperstepProgram):
    """RP101: ``run`` reads ``shared['labels']`` but declares nothing."""

    shared_reads = ()

    def run(self, ctx, inbox, shared):
        return shared["labels"].get(0)


class UndeclaredSharedGetProgram(SuperstepProgram):
    """RP101 via ``shared.get``: silently returns the default in a worker."""

    shared_reads = ("declared",)

    def run(self, ctx, inbox, shared):
        return shared.get("undeclared", 0) + shared["declared"]


class UndeclaredStoreLoadProgram(SuperstepProgram):
    """RP102: loads the ``("adj", v)`` prefix without declaring it."""

    shared_reads = ()
    store_reads = ("weights",)

    def run(self, ctx, inbox, shared):
        total = 0
        for v in (0, 1, 2):
            total += len(ctx.load(("adj", v), ()))
            total += len(ctx.load(("weights", v), ()))
        return total


class UndeclaredApplyWriteProgram(SuperstepProgram):
    """RP103: ``apply`` writes ``shared['totals']`` outside the declarations."""

    shared_reads = ("counts",)

    def run(self, ctx, inbox, shared):
        return len(shared["counts"])

    def apply(self, shared, machine_id, delta):
        shared["totals"][machine_id] = delta


class UndeclaredApplyAliasProgram(SuperstepProgram):
    """RP103 through an alias: ``totals = shared['totals']; totals[...] = ...``."""

    shared_reads = ()

    def run(self, ctx, inbox, shared):
        return 1

    def apply(self, shared, machine_id, delta):
        totals = shared["totals"]
        totals[machine_id] = delta


class StaleDriverScopeProgram(SuperstepProgram):
    """RP104: ``delta_scope='driver'`` while ``apply`` writes what ``run`` reads."""

    shared_reads = ("labels",)
    shared_writes = ()
    delta_scope = "driver"

    def run(self, ctx, inbox, shared):
        return dict(shared["labels"])

    def apply(self, shared, machine_id, delta):
        shared["labels"] = delta


class InvalidScopeProgram(SuperstepProgram):
    """RP104: an unknown ``delta_scope`` literal."""

    shared_reads = ("flags",)
    delta_scope = "everywhere"

    def run(self, ctx, inbox, shared):
        return shared["flags"]


class NondeterministicProgram(SuperstepProgram):
    """RP105: every hazard class in one program."""

    shared_reads = ("peers",)

    def run(self, ctx, inbox, shared):
        noise = random.random() + time.time()
        token = id(ctx) ^ hash(ctx.machine_id)
        region = os.environ.get("REGION", "")
        for peer in {p for p in shared["peers"]}:
            ctx.send(peer, "noise", (noise, token, region))
        return None


class UnpicklableInitProgram(SuperstepProgram):
    """RP106: ``__init__`` stores a live cluster reference and a lambda."""

    shared_reads = ()

    def __init__(self, cluster, seed):
        self.cluster = cluster
        self.seed = seed
        self.picker = lambda items: items[0]

    def run(self, ctx, inbox, shared):
        return self.seed


def make_nested_program():
    """RP106: the returned class is not importable by a worker process."""

    class NestedProgram(SuperstepProgram):
        shared_reads = ()

        def run(self, ctx, inbox, shared):
            return None

    return NestedProgram


class OverDeclaredProgram(SuperstepProgram):
    """RP107: declares keys and prefixes nothing ever touches."""

    shared_reads = ("used", "never_read")
    shared_writes = ("never_written",)
    store_reads = ("adj", "ghost")

    def run(self, ctx, inbox, shared):
        return shared["used"] + len(ctx.load(("adj", 0), ()))


class InboxLiarProgram(SuperstepProgram):
    """RP108: declares ``reads_inbox = False`` and reads the inbox anyway."""

    shared_reads = ()
    reads_inbox = False

    def run(self, ctx, inbox, shared):
        return [msg.payload for msg in inbox]


class FusionDriverLocalLiarProgram(SuperstepProgram):
    """RP110: worker-drivable sends declaration on a driver-local program."""

    shared_reads = ("totals",)
    driver_local = True
    driver_reads_sends = False

    def run(self, ctx, inbox, shared):
        return len(shared["totals"])


class FusionDriverScopeLiarProgram(SuperstepProgram):
    """RP110: worker-drivable sends declaration with driver-scoped deltas."""

    shared_reads = ()
    shared_writes = ("audit",)
    delta_scope = "driver"
    driver_reads_sends = False

    def run(self, ctx, inbox, shared):
        return 1

    def apply(self, shared, machine_id, delta):
        shared["audit"][machine_id] = delta


def unsized_closed_form_send(machine, offers):
    """RP109: ``fixture-offer`` has a registered closed form, send omits ``words=``.

    The registration is in this file on purpose: the RP109 scan merges
    statically-discovered ``register_closed_form`` calls with the live
    registry, so the fixture stays self-contained.
    """
    from repro.mpc.sizing import register_closed_form

    register_closed_form("fixture-offer", lambda payload: 1 + 3 * len(payload))
    machine.send("aggregator", "fixture-offer", offers)
