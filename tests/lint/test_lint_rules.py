"""Golden diagnostics for every ``repro.lint`` rule, plus the clean-tree gate.

The fixtures module holds one deliberately-broken program per rule; each
test asserts its ``RP1xx`` code fires at the expected program with a
``file:line`` anchor inside that program's definition and the advertised
fix hint.  The clean-tree test is the other half of the bargain: the
shipped ``src/`` tree must produce zero findings, so every future program
rewrite runs under this net.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.lint import RULES, analyze_paths
from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).with_name("fixtures_broken.py")


@pytest.fixture(scope="module")
def broken():
    return analyze_paths([FIXTURES])


def findings_for(result, code: str, program: str | None = None):
    return [
        f
        for f in result.findings
        if f.code == code and (program is None or f.program == program)
    ]


def class_line_range(name: str) -> range:
    """Line span of a fixture class/function, so anchors can be asserted."""
    tree = ast.parse(FIXTURES.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if isinstance(node, (ast.ClassDef, ast.FunctionDef)) and node.name == name:
            return range(node.lineno, (node.end_lineno or node.lineno) + 1)
    raise AssertionError(f"fixture {name} not found")


class TestRuleFirings:
    def test_rp101_undeclared_subscript_read(self, broken):
        (finding,) = findings_for(broken, "RP101", "UndeclaredSharedReadProgram")
        assert "shared['labels']" in finding.message
        assert "raises KeyError inside a worker" in finding.message
        assert "add 'labels' to UndeclaredSharedReadProgram.shared_reads" in finding.hint
        assert finding.line in class_line_range("UndeclaredSharedReadProgram")

    def test_rp101_undeclared_get_read(self, broken):
        (finding,) = findings_for(broken, "RP101", "UndeclaredSharedGetProgram")
        assert "shared['undeclared']" in finding.message
        # the declared key is read too and must NOT be reported
        assert "'declared'" in finding.message  # listed as the declared contract

    def test_rp102_undeclared_store_prefix(self, broken):
        (finding,) = findings_for(broken, "RP102", "UndeclaredStoreLoadProgram")
        assert "prefix 'adj'" in finding.message
        assert "silently returns the default" in finding.message
        assert finding.line in class_line_range("UndeclaredStoreLoadProgram")

    def test_rp103_direct_apply_write(self, broken):
        (finding,) = findings_for(broken, "RP103", "UndeclaredApplyWriteProgram")
        assert "shared['totals']" in finding.message
        assert "add 'totals' to UndeclaredApplyWriteProgram.shared_writes" in finding.hint

    def test_rp103_alias_apply_write(self, broken):
        (finding,) = findings_for(broken, "RP103", "UndeclaredApplyAliasProgram")
        assert "shared['totals']" in finding.message
        assert finding.line in class_line_range("UndeclaredApplyAliasProgram")

    def test_rp104_stale_driver_scope(self, broken):
        (finding,) = findings_for(broken, "RP104", "StaleDriverScopeProgram")
        assert "delta_scope='driver'" in finding.message
        assert "shared['labels']" in finding.message
        assert "stale copy" in finding.message

    def test_rp104_invalid_scope_literal(self, broken):
        (finding,) = findings_for(broken, "RP104", "InvalidScopeProgram")
        assert "'everywhere'" in finding.message

    def test_rp105_hazards(self, broken):
        messages = [f.message for f in findings_for(broken, "RP105", "NondeterministicProgram")]
        assert any("random.random()" in m for m in messages)
        assert any("time.time()" in m for m in messages)
        assert any("id()" in m for m in messages)
        assert any("hash()" in m for m in messages)
        assert any("os.environ" in m for m in messages)
        assert any("unordered set" in m for m in messages)

    def test_rp106_stored_runtime_reference_and_lambda(self, broken):
        messages = [f.message for f in findings_for(broken, "RP106", "UnpicklableInitProgram")]
        assert any("'cluster'" in m for m in messages)
        assert any("lambda" in m for m in messages)

    def test_rp106_nested_class(self, broken):
        (finding,) = findings_for(broken, "RP106", "NestedProgram")
        assert "inside a function" in finding.message
        assert finding.line in class_line_range("make_nested_program")

    def test_rp107_unused_declarations(self, broken):
        messages = [f.message for f in findings_for(broken, "RP107", "OverDeclaredProgram")]
        assert any("shared_reads key 'never_read'" in m for m in messages)
        assert any("shared_writes key 'never_written'" in m for m in messages)
        assert any("store_reads prefix 'ghost'" in m for m in messages)
        # the used declarations must not be reported
        assert not any("'used'" in m or "'adj'" in m for m in messages)

    def test_rp108_inbox_liar(self, broken):
        (finding,) = findings_for(broken, "RP108", "InboxLiarProgram")
        assert "reads_inbox = False" in finding.message
        assert finding.line in class_line_range("InboxLiarProgram")

    def test_rp109_unsized_closed_form_send(self, broken):
        (finding,) = findings_for(broken, "RP109")
        assert "'fixture-offer'" in finding.message
        assert "recursive sizer" in finding.message
        assert 'words=closed_form_words("fixture-offer"' in finding.hint
        assert finding.line in class_line_range("unsized_closed_form_send")

    def test_rp109_skips_sized_and_unregistered_sends(self, broken):
        # the fixture tree contains sends of unregistered tags ("noise") and
        # the registration call itself; only the unsized registered send fires
        assert len(findings_for(broken, "RP109")) == 1

    def test_rp110_driver_local_contradiction(self, broken):
        (finding,) = findings_for(broken, "RP110", "FusionDriverLocalLiarProgram")
        assert "driver_reads_sends = False" in finding.message
        assert "driver_local = True" in finding.message
        assert "drop driver_local = True" in finding.hint
        assert finding.line in class_line_range("FusionDriverLocalLiarProgram")

    def test_rp110_driver_scope_contradiction(self, broken):
        (finding,) = findings_for(broken, "RP110", "FusionDriverScopeLiarProgram")
        assert "delta_scope = 'driver'" in finding.message
        assert "fused block" in finding.message
        assert 'widen delta_scope to "owner" or "global"' in finding.hint
        assert finding.line in class_line_range("FusionDriverScopeLiarProgram")

    def test_every_rule_has_a_firing_fixture(self, broken):
        fired = {f.code for f in broken.findings}
        assert fired == set(RULES), f"rules without a broken fixture: {sorted(set(RULES) - fired)}"

    def test_findings_are_anchored_and_sorted(self, broken):
        assert all(f.path.endswith("fixtures_broken.py") for f in broken.findings)
        assert all(f.line > 0 for f in broken.findings)
        keys = [f.sort_key() for f in broken.findings]
        assert keys == sorted(keys)


class TestCleanTree:
    def test_shipped_tree_is_clean(self):
        result = analyze_paths([REPO_ROOT / "src"])
        assert result.errors == []
        assert result.findings == [], "\n".join(f.format_text() for f in result.findings)
        # non-vacuous: the five concrete static_mpc programs were analyzed
        assert result.programs_checked >= 5
        assert {
            "LabelProposeProgram",
            "LabelApplyProgram",
            "MatchingProposeProgram",
            "MatchingAnnounceProgram",
            "MSTCandidateProgram",
        } <= set(result.facts)

    def test_abstract_scaffolding_is_skipped(self):
        result = analyze_paths([REPO_ROOT / "src"])
        assert "SuperstepProgram" not in result.facts
        assert "VertexProgram" not in result.facts


class TestCli:
    def test_clean_tree_exit_zero(self, capsys):
        assert main([str(REPO_ROOT / "src")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_text(self, capsys):
        assert main([str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "RP101" in out and "fix:" in out

    def test_json_format_round_trips(self, capsys):
        assert main([str(FIXTURES), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert report["files_scanned"] == 1
        codes = {f["code"] for f in report["findings"]}
        assert codes == set(RULES)
        sample = report["findings"][0]
        assert {"code", "rule", "path", "line", "col", "program", "message", "hint"} <= set(sample)

    def test_select_filters_codes(self, capsys):
        assert main([str(FIXTURES), "--select", "RP101", "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert {f["code"] for f in report["findings"]} == {"RP101"}

    def test_unknown_rule_code_exit_two(self, capsys):
        assert main([str(FIXTURES), "--select", "RP999"]) == 2
        assert "unknown rule codes" in capsys.readouterr().err

    def test_missing_path_exit_two(self, capsys):
        assert main(["does-not-exist-anywhere"]) == 2
        assert "error" in capsys.readouterr().err

    def test_syntax_error_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main([str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out
