"""Unit tests for word sizing, messages and machines."""

from __future__ import annotations

import pytest

from repro.exceptions import MachineMemoryExceeded
from repro.mpc import Machine, Message, word_size


class TestWordSize:
    def test_scalars_cost_one_word(self):
        assert word_size(None) == 1
        assert word_size(True) == 1
        assert word_size(42) == 1
        assert word_size(3.14) == 1

    def test_strings_cost_by_length(self):
        assert word_size("ab") == 1
        assert word_size("x" * 17) == 3

    def test_containers_cost_framing_plus_contents(self):
        assert word_size([1, 2, 3]) == 4
        assert word_size((1, 2)) == 3
        assert word_size({1: 2}) == 3
        assert word_size({}) == 1

    def test_nested_structures(self):
        payload = {"edge": (3, 7), "weight": 1.5}
        # dict framing 1 + key 1 + tuple 3 + key 1 + float 1 = 7
        assert word_size(payload) == 7

    def test_objects_with_dmpc_words_hook(self):
        class Thing:
            def dmpc_words(self) -> int:
                return 5

        assert word_size(Thing()) == 5

    def test_invalid_dmpc_words_rejected(self):
        class Bad:
            def dmpc_words(self) -> int:
                return 0

        with pytest.raises(ValueError):
            word_size(Bad())


class TestMessage:
    def test_size_computed_from_payload(self):
        msg = Message(sender="a", receiver="b", tag="t", payload=[1, 2, 3])
        assert msg.words == word_size("t") + 4

    def test_explicit_size_respected(self):
        msg = Message(sender="a", receiver="b", tag="t", payload=None, words=17)
        assert msg.words == 17

    def test_zero_word_message_rejected(self):
        with pytest.raises(ValueError):
            Message(sender="a", receiver="b", tag="t", payload=None, words=0)


class TestMachine:
    def test_store_load_delete(self):
        machine = Machine("m0", capacity=100)
        machine.store("key", [1, 2, 3])
        assert machine.load("key") == [1, 2, 3]
        assert "key" in machine
        machine.delete("key")
        assert machine.load("key") is None
        assert machine.used_words == 0

    def test_memory_enforcement(self):
        machine = Machine("m0", capacity=10, strict=True)
        machine.store("a", [1, 2, 3])
        with pytest.raises(MachineMemoryExceeded):
            machine.store("b", list(range(20)))

    def test_memory_not_enforced_when_lenient(self):
        machine = Machine("m0", capacity=10, strict=False)
        machine.store("b", list(range(50)))
        assert machine.used_words > 10

    def test_overwrite_updates_accounting(self):
        machine = Machine("m0", capacity=100)
        machine.store("k", [1, 2, 3, 4])
        first = machine.used_words
        machine.store("k", [1])
        assert machine.used_words < first

    def test_send_and_drain(self):
        machine = Machine("m0", capacity=100)
        machine.send("m1", "greeting", "hello")
        assert len(machine.outbox) == 1
        machine.inbox.append(Message("m1", "m0", "reply", "ok"))
        assert [m.payload for m in machine.receive("reply")] == ["ok"]
        drained = machine.drain("reply")
        assert len(drained) == 1
        assert machine.inbox == []

    def test_drain_filters_by_tag(self):
        machine = Machine("m0", capacity=100)
        machine.inbox.append(Message("a", "m0", "x", 1))
        machine.inbox.append(Message("a", "m0", "y", 2))
        assert [m.payload for m in machine.drain("x")] == [1]
        assert [m.payload for m in machine.inbox] == [2]

    def test_clear(self):
        machine = Machine("m0", capacity=100)
        machine.store("k", 1)
        machine.send("m1", "t", None)
        machine.clear()
        assert machine.used_words == 0
        assert machine.outbox == []
