"""Unit tests for vertex partitioning, O(1)-round primitives and the coordinator."""

from __future__ import annotations

import pytest

from repro.config import DMPCConfig
from repro.mpc import (
    Cluster,
    Coordinator,
    RangePartition,
    UpdateHistory,
    aggregate_sum,
    broadcast,
    gather,
    hash_partition,
    sample_sort,
)


class TestPartition:
    def test_hash_partition_is_deterministic_and_total(self):
        ids = ["m0", "m1", "m2"]
        assert hash_partition(7, ids) == hash_partition(7, ids)
        targets = {hash_partition(v, ids) for v in range(50)}
        assert targets <= set(ids)
        assert len(targets) > 1

    def test_hash_partition_requires_machines(self):
        with pytest.raises(ValueError):
            hash_partition(1, [])

    def test_range_partition_consecutive_blocks(self):
        part = RangePartition(10, ["s0", "s1", "s2"])
        assert part.block_size == 4
        assert [part.machine_for(v) for v in range(10)] == ["s0"] * 4 + ["s1"] * 4 + ["s2"] * 2
        assert list(part.vertices_on("s1")) == [4, 5, 6, 7]
        directory = part.directory()
        assert directory["s0"] == (0, 4)

    def test_range_partition_out_of_range_vertex_wraps(self):
        part = RangePartition(4, ["s0", "s1"])
        assert part.machine_for(100) in {"s0", "s1"}


def build_cluster(num_machines: int = 4) -> Cluster:
    cluster = Cluster(DMPCConfig(capacity_n=64, capacity_m=128))
    cluster.add_machines("m", num_machines)
    return cluster


class TestPrimitives:
    def test_broadcast_reaches_everyone_in_one_round(self):
        cluster = build_cluster()
        count = broadcast(cluster, "m0", "hello", 42)
        assert count == 3
        for mid in ("m1", "m2", "m3"):
            assert cluster.machine(mid).drain("hello")[0].payload == 42
        assert cluster.ledger.updates[-1].num_rounds == 1

    def test_gather_collects_contributions(self):
        cluster = build_cluster()
        values = gather(cluster, "m0", "report", {"m1": 1, "m2": 2, "m3": None})
        assert sorted(values) == [1, 2]

    def test_aggregate_sum(self):
        cluster = build_cluster()
        assert aggregate_sum(cluster, "m0", "sum", {"m1": 1.5, "m2": 2.5, "m3": 0}) == 4.0

    def test_sample_sort_produces_global_order(self):
        cluster = build_cluster(4)
        items = {
            "m0": [9, 3, 11, 40],
            "m1": [1, 25, 17],
            "m2": [5, 30, 2, 8],
            "m3": [12, 7],
        }
        result = sample_sort(cluster, items)
        merged = []
        for mid in sorted(result):
            merged.extend(result[mid])
        assert merged == sorted(x for values in items.values() for x in values)
        # every bucket is locally sorted
        for bucket in result.values():
            assert bucket == sorted(bucket)

    def test_sample_sort_empty(self):
        cluster = build_cluster(2)
        assert sample_sort(cluster, {}) == {}


class TestCoordinator:
    def test_update_history_bounded(self):
        history = UpdateHistory(capacity=3)
        for i in range(5):
            history.append("insert", i, i + 1)
        assert len(history) == 3
        assert history.last_seq == 5
        assert [e.seq for e in history.entries()] == [3, 4, 5]
        assert history.entries_since(4)[0].seq == 5
        assert history.entries_for_vertex(4)  # edge (3,4) or (4,5) survived

    def test_coordinator_send_history(self):
        cluster = Cluster(DMPCConfig(capacity_n=16, capacity_m=32))
        stats = cluster.add_machines("stats", 2, role="stats")
        partition = RangePartition(16, [m.machine_id for m in stats])
        coordinator = Coordinator.create(cluster, partition)
        coordinator.record("insert", 1, 2)
        coordinator.record("match", 1, 2)
        coordinator.send_history(["stats0", "stats1"])
        cluster.exchange()
        received = cluster.machine("stats0").drain("update-history")
        assert len(received) == 1
        assert received[0].words >= 2
        assert coordinator.stats_machine_for(0) == "stats0"

    def test_coordinator_send_history_order_is_registration_order(self):
        """Receivers passed as an unordered set must stage deterministically."""
        cluster = Cluster(DMPCConfig(capacity_n=16, capacity_m=32))
        stats = cluster.add_machines("stats", 4, role="stats")
        partition = RangePartition(16, [m.machine_id for m in stats])
        coordinator = Coordinator.create(cluster, partition)
        coordinator.record("insert", 1, 2)
        coordinator.send_history({"stats3", "stats1", "stats0", coordinator.machine_id})
        staged = [msg.receiver for msg in coordinator.machine.outbox]
        assert staged == ["stats0", "stats1", "stats3"]  # self excluded, index order
