"""Unit tests for the cluster round engine and the metrics ledger."""

from __future__ import annotations

import pytest

from repro.config import DMPCConfig
from repro.exceptions import MessageSizeExceeded, ProtocolError, UnknownMachineError
from repro.mpc import Cluster, MetricsLedger, Message, RoundRecord


def make_cluster(**kwargs) -> Cluster:
    config = DMPCConfig(capacity_n=32, capacity_m=64)
    return Cluster(config, **kwargs)


class TestCluster:
    def test_add_and_lookup_machines(self):
        cluster = make_cluster()
        cluster.add_machine("a", role="aux")
        cluster.add_machines("w", 3, role="worker")
        assert len(cluster) == 4
        assert cluster.machine_ids(role="worker") == ["w0", "w1", "w2"]
        assert "a" in cluster
        with pytest.raises(UnknownMachineError):
            cluster.machine("nope")

    def test_duplicate_machine_rejected(self):
        cluster = make_cluster()
        cluster.add_machine("a")
        with pytest.raises(ProtocolError):
            cluster.add_machine("a")

    def test_exchange_delivers_messages_and_records_round(self):
        cluster = make_cluster()
        a = cluster.add_machine("a")
        cluster.add_machine("b")
        a.send("b", "ping", 7)
        record = cluster.exchange()
        assert record.active_machines == 2
        assert record.message_count == 1
        assert cluster.machine("b").drain("ping")[0].payload == 7

    def test_exchange_to_unknown_machine_raises(self):
        cluster = make_cluster()
        a = cluster.add_machine("a")
        a.send("ghost", "ping", 1)
        with pytest.raises(UnknownMachineError):
            cluster.exchange()

    def test_io_cap_enforced_when_enabled(self):
        cluster = make_cluster(enforce_io_cap=True)
        a = cluster.add_machine("a")
        cluster.add_machine("b")
        a.send("b", "big", None, words=cluster.config.machine_memory + 1)
        with pytest.raises(MessageSizeExceeded):
            cluster.exchange()

    def test_io_cap_not_enforced_by_default(self):
        cluster = make_cluster()
        a = cluster.add_machine("a")
        cluster.add_machine("b")
        a.send("b", "big", None, words=cluster.config.machine_memory + 1)
        record = cluster.exchange()
        assert record.total_words > cluster.config.machine_memory

    def test_superstep_runs_handler_on_all_machines(self):
        cluster = make_cluster()
        cluster.add_machines("w", 3)

        def handler(machine, inbox):
            machine.store("seen", len(inbox))
            if machine.machine_id != "w0":
                machine.send("w0", "report", machine.machine_id)

        cluster.superstep(handler)
        assert len(cluster.machine("w0").inbox) == 2

    def test_update_context_scopes_rounds(self):
        cluster = make_cluster()
        a = cluster.add_machine("a")
        cluster.add_machine("b")
        with cluster.update("insert:1-2"):
            a.send("b", "x", 1)
            cluster.exchange()
            a.send("b", "y", 2)
            cluster.exchange()
        record = cluster.ledger.updates[-1]
        assert record.label == "insert:1-2"
        assert record.num_rounds == 2

    def test_total_stored_words(self):
        cluster = make_cluster()
        a = cluster.add_machine("a")
        a.store("x", [1, 2, 3])
        assert cluster.total_stored_words == a.used_words


class TestMetricsLedger:
    def test_round_record_from_messages(self):
        msgs = [Message("a", "b", "t", 1), Message("b", "c", "t", [1, 2])]
        record = RoundRecord.from_messages(1, msgs)
        assert record.active_machines == 3
        assert record.message_count == 2
        assert record.total_words == sum(m.words for m in msgs)

    def test_update_bracketing_errors(self):
        ledger = MetricsLedger()
        with pytest.raises(ProtocolError):
            ledger.end_update()
        ledger.begin_update("u")
        with pytest.raises(ProtocolError):
            ledger.begin_update("v")
        ledger.end_update()

    def test_summary_aggregates_updates(self):
        ledger = MetricsLedger()
        for i in range(3):
            ledger.begin_update(f"op:{i}")
            ledger.record_round([Message("a", "b", "t", list(range(i + 1)))])
            ledger.record_round([Message("b", "a", "t", 1)])
            ledger.end_update()
        summary = ledger.summary("op:")
        assert summary.num_updates == 3
        assert summary.max_rounds == 2
        assert summary.max_active_machines == 2
        assert summary.total_words > 0

    def test_unlabelled_rounds_tracked(self):
        ledger = MetricsLedger()
        ledger.record_round([Message("a", "b", "t", 1)])
        assert ledger.updates[0].label == "<unlabelled>"

    def test_entropy_low_for_coordinator_pattern_high_for_spread(self):
        concentrated = MetricsLedger()
        concentrated.begin_update("u")
        for _ in range(8):
            concentrated.record_round([Message("hub", "m1", "t", 1)])
        concentrated.end_update()

        spread = MetricsLedger()
        spread.begin_update("u")
        for i in range(8):
            spread.record_round([Message(f"m{i}", f"m{i+1}", "t", 1)])
        spread.end_update()

        assert spread.communication_entropy() > concentrated.communication_entropy()

    def test_reset(self):
        ledger = MetricsLedger()
        ledger.begin_update("u")
        ledger.record_round([Message("a", "b", "t", 1)])
        ledger.end_update()
        ledger.reset()
        assert ledger.updates == []
