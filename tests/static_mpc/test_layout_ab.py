"""Layout A/B equivalence: the CSR recut must change nothing observable.

The flat-layout contract (:mod:`repro.mpc.layout`) extends the backend
contract one axis further: the *state layout* may change how a static
workload computes but never what it computes or what it charges.  These
tests pin that down — for each static baseline a dict-layout reference run
must agree bit-for-bit with CSR runs on every execution backend: solutions,
per-update round counts and total communicated words.  Storage footprint
is the one observable the layout legitimately changes (flat buffers pack
differently from per-vertex dict entries, in either direction at small
scale), so it is *not* compared across layouts here; per-machine
``used_words`` parity *across backends* for a fixed layout is pinned by
the backend-equivalence suite.

They also pin the closed-form message sizes the CSR kernels pass as
``words=`` (skipping the per-element sizing walk): the closed forms must
equal what :func:`~repro.mpc.sizing.word_size` would have charged for the
same tag and payload, for representative payload sizes — the invariant the
kernel docstrings defer to this file for.
"""

from __future__ import annotations

import pytest

from repro.graph.generators import gnm_random_graph, random_weighted_graph
from repro.mpc.layout import (
    LAYOUT_ENV_VAR,
    VertexInterner,
    resolve_static_layout,
)
from repro.mpc.sizing import fast_word_size, word_size
from repro.static_mpc import StaticBoruvkaMST, StaticConnectedComponents, StaticMaximalMatching

BACKENDS = ("reference", "fast", "sharded", "parallel", "process", "resident", "resident-shm")

#: deliberately odd so it does not divide typical machine counts
SHARD_COUNT = 3
MAX_WORKERS = 2


def backend_kwargs(backend: str) -> dict:
    extra: dict = {}
    if backend == "resident-shm":
        extra["backend"] = "resident"
        extra["resident_slots"] = 2
    else:
        extra["backend"] = backend
    if backend in ("sharded", "parallel", "process", "resident", "resident-shm"):
        extra["shard_count"] = SHARD_COUNT
    if backend in ("parallel", "process", "resident", "resident-shm"):
        extra["max_workers"] = MAX_WORKERS
    return extra


def ledger_rows(algorithm) -> list[tuple[str, int, int]]:
    return [(u.label, u.num_rounds, u.total_words) for u in algorithm.cluster.ledger.updates]


class TestLayoutABEquivalence:
    """dict-layout reference run == CSR run, on every backend."""

    def assert_ab(self, make, solution, backend):
        baseline = make(layout="dict", backend="reference")
        baseline.run()
        candidate = make(layout="csr", **backend_kwargs(backend))
        candidate.run()
        assert solution(candidate) == solution(baseline)
        assert ledger_rows(candidate) == ledger_rows(baseline)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_connected_components_ab(self, backend):
        graph = gnm_random_graph(48, 100, seed=11)
        self.assert_ab(
            lambda **kw: StaticConnectedComponents(graph, **kw),
            lambda a: (a.labels, sorted(a.spanning_forest()), a.rounds_used),
            backend,
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_maximal_matching_ab(self, backend):
        graph = gnm_random_graph(44, 110, seed=23)
        self.assert_ab(
            lambda **kw: StaticMaximalMatching(graph, seed=23, **kw),
            lambda a: (sorted(a.matching), a.rounds_used),
            backend,
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_boruvka_mst_ab(self, backend):
        graph = random_weighted_graph(40, 90, seed=31)
        self.assert_ab(
            lambda **kw: StaticBoruvkaMST(graph, **kw),
            lambda a: (sorted(a.forest), a.phases_used),
            backend,
        )


class TestClosedFormWords:
    """The ``words=`` closed forms equal the sizer's charge, element for element.

    A message's charged size is ``sizer(tag) + sizer(payload)``
    (:meth:`Machine.send`); the CSR kernels pre-size their sends with the
    closed forms below, so these equalities are what keeps the A/B ledger
    comparison above exact rather than coincidental.
    """

    @pytest.mark.parametrize("sizer", [word_size, fast_word_size], ids=["reference", "fast"])
    @pytest.mark.parametrize("k", [1, 2, 7, 50])
    def test_label_proposal_is_3_plus_4k(self, sizer, k):
        payload = [(w, w + 1, w + 2) for w in range(k)]
        assert sizer("label-proposal") + sizer(payload) == 3 + 4 * k

    @pytest.mark.parametrize("sizer", [word_size, fast_word_size], ids=["reference", "fast"])
    @pytest.mark.parametrize("k", [1, 2, 7, 50])
    def test_propose_is_2_plus_3k(self, sizer, k):
        payload = [(v, v + 1) for v in range(k)]
        assert sizer("propose") + sizer(payload) == 2 + 3 * k

    @pytest.mark.parametrize("sizer", [word_size, fast_word_size], ids=["reference", "fast"])
    @pytest.mark.parametrize("k", [1, 2, 7, 50])
    def test_matched_status_is_3_plus_k(self, sizer, k):
        payload = list(range(k))
        assert sizer("matched-status") + sizer(payload) == 3 + k

    @pytest.mark.parametrize("sizer", [word_size, fast_word_size], ids=["reference", "fast"])
    def test_mst_candidate_is_7(self, sizer):
        assert sizer("mst-candidate") + sizer((4, 0.5, 4, 9)) == 7

    @pytest.mark.parametrize("sizer", [word_size, fast_word_size], ids=["reference", "fast"])
    @pytest.mark.parametrize("k", [0, 1, 2, 7, 50])
    def test_mst_merges_is_3_plus_3k(self, sizer, k):
        # Driver-side merge broadcast (StaticBoruvkaMST.run), pre-sized for
        # both layouts: recursively sizing the same list once per receiver
        # dominated every phase.
        payload = [(v, v + 1) for v in range(k)]
        assert sizer("mst-merges") + sizer(payload) == 3 + 3 * k


class TestVertexInterner:
    def test_round_trip_preserves_order(self):
        vertices = [7, 3, 19, 0, 4]
        interner = VertexInterner(vertices)
        assert len(interner) == 5
        assert interner.vertices == vertices
        for position, v in enumerate(vertices):
            assert interner.dense(v) == position
            assert interner.vertex(position) == v

    def test_unknown_vertex_raises(self):
        interner = VertexInterner([1, 2])
        with pytest.raises(KeyError):
            interner.dense(99)

    def test_empty(self):
        assert len(VertexInterner([])) == 0


class TestResolveStaticLayout:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(LAYOUT_ENV_VAR, "csr")
        assert resolve_static_layout("dict") == "dict"

    def test_env_var_applies_when_unset(self, monkeypatch):
        monkeypatch.setenv(LAYOUT_ENV_VAR, "dict")
        assert resolve_static_layout() == "dict"

    def test_default_is_csr(self, monkeypatch):
        monkeypatch.delenv(LAYOUT_ENV_VAR, raising=False)
        assert resolve_static_layout() == "csr"

    def test_unknown_layout_raises(self):
        with pytest.raises(ValueError, match="unknown static layout"):
            resolve_static_layout("columnar")
