"""Tests for the static MPC baselines (connected components, matching, MST)."""

from __future__ import annotations

import pytest

from repro.graph.generators import gnm_random_graph, grid_graph, random_weighted_graph, star_graph
from repro.graph.validation import (
    connected_components,
    is_maximal_matching,
    is_spanning_forest,
    minimum_spanning_forest_weight,
    same_partition,
)
from repro.static_mpc import StaticBoruvkaMST, StaticConnectedComponents, StaticMaximalMatching, build_static_cluster


class TestSetup:
    def test_build_static_cluster_places_all_adjacency_csr(self):
        graph = gnm_random_graph(20, 40, seed=1)
        setup = build_static_cluster(graph)  # default layout: csr
        assert setup.layout == "csr"
        placed = 0
        for machine_id in setup.worker_ids:
            csr = setup.machine_csr(machine_id)
            assert list(csr.verts) == setup.owned_vertices(machine_id)
            assert len(csr.weights) == csr.num_entries
            placed += csr.num_entries
        assert placed == 2 * graph.num_edges
        assert len(setup.interner) == graph.num_vertices

    def test_build_static_cluster_places_all_adjacency_dict(self):
        graph = gnm_random_graph(20, 40, seed=1)
        setup = build_static_cluster(graph, layout="dict")
        assert setup.layout == "dict"
        placed = 0
        for machine_id in setup.worker_ids:
            machine = setup.cluster.machine(machine_id)
            for v in setup.owned_vertices(machine_id):
                placed += len(machine.load(("adj", v), []))
        assert placed == 2 * graph.num_edges

    def test_unweighted_setup_skips_weight_stores(self):
        graph = gnm_random_graph(12, 20, seed=2)
        dict_setup = build_static_cluster(graph, layout="dict", weighted=False)
        for machine_id in dict_setup.worker_ids:
            machine = dict_setup.cluster.machine(machine_id)
            for v in dict_setup.owned_vertices(machine_id):
                assert machine.load(("weights", v)) is None
        csr_setup = build_static_cluster(graph, layout="csr", weighted=False)
        for machine_id in csr_setup.worker_ids:
            assert csr_setup.machine_csr(machine_id).weights is None

    def test_owned_vertices_is_authoritative(self):
        graph = gnm_random_graph(10, 15, seed=3)
        setup = build_static_cluster(graph)
        assert sorted(v for mid in setup.worker_ids for v in setup.owned_vertices(mid)) == sorted(
            graph.vertices
        )
        with pytest.raises(KeyError):
            setup.owned_vertices("not-a-machine")


class TestStaticConnectedComponents:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_components_match_reference(self, seed):
        graph = gnm_random_graph(40, 50, seed=seed)
        algo = StaticConnectedComponents(graph)
        algo.run()
        assert same_partition(algo.components(), connected_components(graph))

    def test_spanning_forest_valid(self):
        graph = gnm_random_graph(30, 60, seed=5)
        algo = StaticConnectedComponents(graph)
        algo.run()
        assert is_spanning_forest(graph, algo.spanning_forest())

    def test_round_and_communication_costs_recorded(self):
        graph = gnm_random_graph(40, 80, seed=7)
        algo = StaticConnectedComponents(graph)
        algo.run()
        summary = algo.cluster.ledger.summary("static-cc")
        assert summary.max_rounds >= 2
        # static recomputation shuffles a lot of data per run
        assert summary.total_words > graph.num_edges

    def test_structured_graphs(self):
        grid = grid_graph(4, 5)
        algo = StaticConnectedComponents(grid)
        algo.run()
        assert len(algo.components()) == 1


class TestStaticMaximalMatching:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matching_is_maximal(self, seed):
        graph = gnm_random_graph(30, 70, seed=seed)
        algo = StaticMaximalMatching(graph, seed=seed)
        matching = algo.run()
        assert is_maximal_matching(graph, matching)

    def test_star_graph_matches_once(self):
        graph = star_graph(10)
        algo = StaticMaximalMatching(graph)
        matching = algo.run()
        assert len(matching) == 1

    def test_all_machines_participate(self):
        graph = gnm_random_graph(40, 120, seed=3)
        algo = StaticMaximalMatching(graph, seed=3)
        algo.run()
        summary = algo.cluster.ledger.summary("static-matching")
        assert summary.max_active_machines >= len(algo.setup.worker_ids) // 2


class TestStaticBoruvkaMST:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_forest_weight_is_optimal(self, seed):
        graph = random_weighted_graph(25, 60, seed=seed)
        algo = StaticBoruvkaMST(graph)
        forest = algo.run()
        assert is_spanning_forest(graph, forest)
        assert abs(algo.forest_weight() - minimum_spanning_forest_weight(graph)) < 1e-9

    def test_phase_count_logarithmic(self):
        graph = random_weighted_graph(64, 160, seed=4)
        algo = StaticBoruvkaMST(graph)
        algo.run()
        assert 1 <= algo.phases_used <= 2 * 7  # ~log2(64) phases with slack

    def test_disconnected_graph(self):
        graph = random_weighted_graph(20, 12, seed=6)
        algo = StaticBoruvkaMST(graph)
        forest = algo.run()
        assert is_spanning_forest(graph, forest)
