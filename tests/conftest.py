"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.config import DMPCConfig


@pytest.fixture
def rng() -> random.Random:
    return random.Random(2019)


@pytest.fixture
def small_config() -> DMPCConfig:
    """A deployment sized for small test graphs (up to ~64 vertices, ~256 edges)."""
    return DMPCConfig(capacity_n=64, capacity_m=256)


@pytest.fixture
def tiny_config() -> DMPCConfig:
    """A deployment sized for tiny hand-checkable graphs."""
    return DMPCConfig(capacity_n=16, capacity_m=40)
