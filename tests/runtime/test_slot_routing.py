"""Slot-local routing: the wire codec, the shm rings and the traffic books.

``test_backend_equivalence`` pins that the slot-routing resident backend is
bit-identical to the other six configurations; ``test_resident`` pins the
session protocol and live re-planning.  This module covers the routing
machinery itself:

* the marshal-first frame codec round-trips everything a routed frame can
  carry — including tuple-keyed ``("adj", v)`` store payloads — and falls
  back to pickle for payloads marshal rejects;
* the SPSC ring preserves frame order across wraps, refuses (never blocks
  on) frames that do not fit, and detects torn frames loudly;
* the routed round (driven in-process, the protocol ops are plain
  functions) delivers same-slot frames without touching a ring, rides
  cross-slot frames over the rings in reference order, defers same-epoch
  ring read-ahead, and spills to the driver pipe on overflow;
* the word accounting sizes each message exactly once and lands on the
  same totals as the reference sizer;
* end to end: a single-slot session routes everything locally (zero
  cross-slot frames), deliberately tiny rings force pipe fallbacks without
  changing a bit, and a mid-run re-plan that migrates machines across
  slots stays bit-identical.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph.generators import gnm_random_graph
from repro.mpc.message import Message
from repro.mpc.program import SuperstepProgram
from repro.mpc.sizing import word_size
from repro.runtime import resident as resident_mod
from repro.runtime.resident import (
    ResidentSession,
    _session_flush,
    _session_open,
    _session_run_round,
)
from repro.runtime.sharding import ShardPlan
from repro.runtime.wire import (
    FRAME_HEADER,
    ShmRing,
    TornFrameError,
    decode_obj,
    encode_obj,
    pack_inbox,
    unpack_inbox,
)
from repro.static_mpc import StaticMaximalMatching
from repro.static_mpc.common import build_static_cluster
from repro.static_mpc.connected_components import LabelApplyProgram, LabelProposeProgram

# ------------------------------------------------------------------ fixtures
#: scalars marshal handles natively (floats kept NaN-free so == works)
_scalars = (
    st.none()
    | st.booleans()
    | st.integers(-(2**40), 2**40)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=8)
    | st.binary(max_size=8)
)
#: recursive payloads shaped like real routed traffic: lists of pairs,
#: tuple-keyed store dicts (the ``("adj", v)`` idiom), nested containers
_payloads = st.recursive(
    _scalars,
    lambda children: (
        st.lists(children, max_size=4)
        | st.tuples(children, children)
        | st.dictionaries(
            st.tuples(st.just("adj"), st.integers(0, 99)), children, max_size=4
        )
        | st.dictionaries(st.integers(0, 99), children, max_size=4)
    ),
    max_leaves=12,
)


class _Opaque:
    """Marshal-rejected payload (pickle fallback path); value-compares."""

    def __init__(self, value: int) -> None:
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Opaque) and other.value == self.value


class FanoutProgram(SuperstepProgram):
    """Send a scripted list of messages per machine; echo the inbox as delta."""

    shared_reads = ()

    def __init__(self, sends: dict[str, list[tuple[str, str, object]]]) -> None:
        self.sends = dict(sends)

    def run(self, ctx, inbox, shared):
        for receiver, tag, payload in self.sends.get(ctx.machine_id, ()):
            ctx.send(receiver, tag, payload)
        return [(m.sender, m.tag, m.payload, m.words) for m in inbox]

    def apply(self, shared, machine_id, delta):
        shared.setdefault("got", {})[machine_id] = delta


def local_ring(capacity: int) -> ShmRing:
    """A ring over plain process-local bytes — same framing, no shm."""
    return ShmRing(bytearray(16 + capacity))


def routed_round(sessions, session_id, program, batch_ids, machine_slots, slot, epoch, *, forward=()):
    """Drive one slot-routed round through the real protocol op, in-process."""
    blob = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
    routing = {
        "epoch": epoch,
        "slot": slot,
        "map": dict(machine_slots),
        "forward": list(forward),
        "drop_inbox": not program.reads_inbox,
    }
    reply = _session_run_round(
        sessions, session_id, {0: blob}, 0, [], {}, [],
        [(machine_id, []) for machine_id in batch_ids], routing,
    )
    assert reply[0] == "routed"
    return reply


# ---------------------------------------------------------------- wire codec
class TestWireCodec:
    @settings(max_examples=60, deadline=None)
    @given(payload=_payloads, epoch=st.integers(0, 500), seq=st.integers(0, 99))
    def test_frames_round_trip_through_marshal(self, payload, epoch, seq):
        frame = (epoch, 3, seq, "w0", "w1", "propose", payload, 17)
        blob = encode_obj(frame)
        assert blob[:1] == b"M", "builtin-only frames must take the marshal path"
        assert decode_obj(blob) == frame

    def test_unmarshalable_payloads_fall_back_to_pickle(self):
        frame = (0, 0, 0, "w0", "w1", "blob", _Opaque(7), 3)
        blob = encode_obj(frame)
        assert blob[:1] == b"P"
        assert decode_obj(blob) == frame

    def test_inbox_packing_round_trips_messages(self):
        inbox = [
            Message(sender="w0", receiver="w1", tag="adj-page", payload={("adj", 4): [1, 2]}, words=9),
            Message(sender="w2", receiver="w1", tag="probe", payload=None, words=1),
        ]
        back = unpack_inbox(decode_obj(encode_obj(pack_inbox(inbox))))
        assert [m.as_fields() for m in back] == [m.as_fields() for m in inbox]


# ------------------------------------------------------------------ shm ring
class TestShmRing:
    @settings(max_examples=50, deadline=None)
    @given(
        blobs=st.lists(st.binary(min_size=0, max_size=40), max_size=30),
        capacity=st.integers(64, 192),
    )
    def test_interleaved_writes_and_reads_preserve_order(self, blobs, capacity):
        """Drain-on-full interleaving: every frame comes back once, in order,
        across arbitrarily many wraps of a small ring."""
        ring = local_ring(capacity)
        seen: list[bytes] = []
        for blob in blobs:
            if not ring.write(blob):
                seen.extend(ring.read_all())
                if FRAME_HEADER + len(blob) <= capacity:
                    assert ring.write(blob), "an empty ring must accept a fitting frame"
                else:
                    continue  # oversized for any state of this ring
        seen.extend(ring.read_all())
        assert seen == [b for b in blobs if FRAME_HEADER + len(b) <= capacity]
        assert ring.backlog == 0

    def test_wrap_padding_is_invisible_to_the_reader(self):
        ring = local_ring(64)
        frames = [bytes([i]) * 20 for i in range(8)]  # 28 bytes framed: wraps often
        for frame in frames:
            assert ring.write(frame)
            assert ring.read_all() == [frame]

    def test_full_ring_refuses_instead_of_blocking(self):
        ring = local_ring(64)
        assert ring.write(b"x" * 56)  # fills the ring exactly
        assert not ring.write(b"y")
        assert ring.read_all() == [b"x" * 56]
        assert ring.write(b"y")

    def test_oversized_frame_is_always_refused(self):
        ring = local_ring(64)
        assert not ring.write(b"z" * 57)

    def test_torn_frame_raises(self):
        buf = bytearray(16 + 128)
        ring = ShmRing(buf)
        assert ring.write(b"payload")
        buf[16 + 4] ^= 0xFF  # corrupt the header checksum in place
        with pytest.raises(TornFrameError):
            ring.read_all()

    def test_shared_memory_attach_round_trip(self):
        writer = ShmRing.create(4096)
        try:
            reader = ShmRing.attach(writer.name)
            try:
                assert writer.write(encode_obj((1, 0, 0, "a", "b", "t", [1, 2], 3)))
                frames = [decode_obj(blob) for blob in reader.read_all()]
                assert frames == [(1, 0, 0, "a", "b", "t", [1, 2], 3)]
            finally:
                reader.close()
        finally:
            writer.close()
            writer.unlink()


# ------------------------------------------------------- routed round (unit)
class TestRoutedRound:
    def test_same_slot_frames_never_touch_a_ring(self):
        sessions = {}
        _session_open(sessions, "s")
        ring = local_ring(1024)
        sessions["s"].rings_out[1] = ring
        slots = {"a": (0, 0), "b": (1, 0), "c": (2, 1)}
        program = FanoutProgram({"a": [("b", "t", i) for i in range(3)]})
        reply = routed_round(sessions, "s", program, ["a", "b"], slots, 0, 0)
        local, ring_frames, ring_bytes, overflows = reply[3]
        assert (local, ring_frames, ring_bytes, overflows) == (3, 0, 0, 0)
        assert reply[4] == [] and reply[5] == []
        assert ring.backlog == 0, "same-slot traffic must not touch the ring"
        assert [f[2] for f in sessions["s"].pending["b"]] == [0, 1, 2]
        # the held frames are due next round, in staging order
        reply2 = routed_round(sessions, "s", FanoutProgram({}), ["a", "b"], slots, 0, 1)
        delivered = dict(reply2[1])["b"]
        assert delivered == [("a", "t", i, word_size("t") + word_size(i)) for i in range(3)]

    def test_cross_slot_frames_ride_the_ring_in_reference_order(self):
        """Two in-process 'workers' sharing one ring buffer: the destination
        slot ingests exactly the frames the source slot wrote, and serves
        them sorted by the global (epoch, sender_index, seq) key."""
        ring = local_ring(4096)
        src, dst = {}, {}
        _session_open(src, "s")
        _session_open(dst, "s")
        src["s"].rings_out[1] = ring
        dst["s"].rings_in[0] = ring
        slots = {"a": (0, 0), "b": (1, 0), "c": (2, 1)}
        program = FanoutProgram(
            {"b": [("c", "later", "from-b")], "a": [("c", "first", "from-a")]}
        )
        reply = routed_round(src, "s", program, ["a", "b"], slots, 0, 0)
        _, ring_frames, ring_bytes, overflows = reply[3]
        assert ring_frames == 2 and overflows == 0 and ring_bytes > 0
        reply2 = routed_round(dst, "s", FanoutProgram({}), ["c"], slots, 1, 1)
        # sender registration order (a before b), not batch order, wins
        assert dict(reply2[1])["c"] == [
            ("a", "first", "from-a", word_size("first") + word_size("from-a")),
            ("b", "later", "from-b", word_size("later") + word_size("from-b")),
        ]

    def test_ring_overflow_spills_to_the_driver_and_forward_delivers(self):
        sessions = {}
        _session_open(sessions, "s")
        sessions["s"].rings_out[1] = local_ring(64)
        slots = {"a": (0, 0), "c": (1, 1)}
        big = list(range(200))
        reply = routed_round(sessions, "s", FanoutProgram({"a": [("c", "big", big)]}), ["a"], slots, 0, 0)
        assert reply[3][3] == 1, "a frame that cannot fit must count as overflow"
        (dst_slot, frame), = reply[4]
        assert dst_slot == 1 and frame[4] == "c" and frame[6] == big
        # the driver forwards the spilled frame into the destination's round
        dst = {}
        _session_open(dst, "s")
        reply2 = routed_round(dst, "s", FanoutProgram({}), ["c"], slots, 1, 1, forward=[frame])
        assert dict(reply2[1])["c"] == [("a", "big", big, frame[7])]

    def test_same_epoch_ring_read_ahead_waits_one_round(self):
        """A fast peer may write *this* round's frames before we run: they
        must stay pending, exactly like any other message sent this round."""
        ring = local_ring(1024)
        sessions = {}
        _session_open(sessions, "s")
        sessions["s"].rings_in[0] = ring
        slots = {"a": (0, 0), "c": (1, 1)}
        early = (1, 0, 0, "a", "c", "t", "early", 2)
        assert ring.write(encode_obj(early))
        reply = routed_round(sessions, "s", FanoutProgram({}), ["c"], slots, 1, 1)
        assert dict(reply[1])["c"] == [], "epoch-1 frames are not due in round 1"
        assert sessions["s"].pending["c"] == [early]
        reply2 = routed_round(sessions, "s", FanoutProgram({}), ["c"], slots, 1, 2)
        assert dict(reply2[1])["c"] == [("a", "t", "early", 2)]

    def test_flush_surrenders_held_and_ring_frames(self):
        ring = local_ring(1024)
        sessions = {}
        _session_open(sessions, "s")
        sessions["s"].rings_in[0] = ring
        held = (0, 1, 0, "b", "c", "t", "held", 2)
        sessions["s"].pending["c"] = [held]
        in_ring = (0, 0, 0, "a", "c", "t", "ringed", 2)
        assert ring.write(encode_obj(in_ring))
        frames = _session_flush(sessions, "s")
        assert sorted(frames, key=lambda f: (f[0], f[1], f[2])) == [in_ring, held]
        assert sessions["s"].pending == {}


# ------------------------------------------------------------ word accounting
class TestSizerAccounting:
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(payloads=st.lists(_payloads, min_size=1, max_size=6))
    def test_each_message_is_sized_exactly_once_matching_reference(self, payloads):
        """Property: a routed round invokes the sizer exactly twice per
        message (tag + payload, at staging) and the per-pair aggregates it
        reports equal the reference sizer's totals — the accounting the
        driver reconstructs is bit-for-bit the one every backend charges."""
        calls = []
        real = resident_mod.fast_word_size

        def counting(value):
            calls.append(value)
            return real(value)

        sends = [("c", f"t{i}", payload) for i, payload in enumerate(payloads)]
        sessions = {}
        _session_open(sessions, "s")
        slots = {"a": (0, 0), "c": (1, 0)}
        resident_mod.fast_word_size = counting
        try:
            reply = routed_round(sessions, "s", FanoutProgram({"a": sends}), ["a", "c"], slots, 0, 0)
        finally:
            resident_mod.fast_word_size = real
        assert len(calls) == 2 * len(sends)
        expected_total = sum(word_size(tag) + word_size(payload) for _, tag, payload in sends)
        ((sender, receiver, words, count, max_words),) = reply[2]
        assert (sender, receiver, count) == ("a", "c", len(sends))
        assert words == expected_total
        assert max_words == max(
            word_size(tag) + word_size(payload) for _, tag, payload in sends
        )
        # and every individual frame carries its reference size
        for frame, (_, tag, payload) in zip(sessions["s"].pending["c"], sends):
            assert frame[7] == word_size(tag) + word_size(payload)


# ------------------------------------------------------------------ end to end
SHARD_COUNT = 3
MAX_WORKERS = 2


def run_matching(graph, seed=31, **kwargs):
    algorithm = StaticMaximalMatching(graph, seed=seed, shard_count=SHARD_COUNT, **kwargs)
    algorithm.run()
    return algorithm


def run_label_propagation(graph, *, backend, plans=None, **cluster_kwargs):
    """The StaticConnectedComponents round loop with re-plan injection —
    self-contained (test modules are not importable from each other)."""
    # The hand-built round loop below uses the dict-layout programs, so pin
    # the layout regardless of the REPRO_STATIC_LAYOUT default.
    setup = build_static_cluster(
        graph,
        backend=backend,
        shard_count=SHARD_COUNT,
        max_workers=MAX_WORKERS,
        layout="dict",
        **cluster_kwargs,
    )
    cluster = setup.cluster
    worker_ids = setup.worker_ids
    leader = worker_ids[0]
    state = {"labels": {v: v for v in graph.vertices}, "via": {}, "changed_flags": {}}
    propose = LabelProposeProgram(setup.owned, worker_ids)
    apply_min = LabelApplyProgram(setup.owned, worker_ids, leader)
    migrations = []
    with cluster.update("slot-routing-cc"), cluster.session(state) as session:
        changed = True
        rounds = 0
        while changed and rounds < 4 * max(4, graph.num_vertices):
            rounds += 1
            if plans and rounds in plans:
                cluster.replan(plans[rounds](cluster))
                migrations.append((rounds, list(session.last_migration or [])))
            cluster.superstep(propose, machines=worker_ids, shared=state)
            cluster.superstep(apply_min, machines=worker_ids, shared=state)
            changed = any(state["changed_flags"].values())
        cluster.machine(leader).drain("changed")
    return {
        "labels": state["labels"],
        "rounds": rounds,
        "ledger": [(u.label, u.num_rounds, u.total_words) for u in cluster.ledger.updates],
        "cluster": cluster,
        "session": session,
        "migrations": migrations,
    }


class TestEndToEndTraffic:
    def test_single_slot_session_routes_everything_locally(self):
        """With one worker slot every sender/receiver pair is same-slot:
        zero cross-slot frames, zero fallbacks, all messages worker-local —
        and the matching is still bit-identical to the fast backend."""
        graph = gnm_random_graph(48, 130, seed=17)
        fixed = run_matching(graph, backend="fast")
        routed = run_matching(graph, backend="resident", resident_slots=1)
        assert sorted(routed.matching) == sorted(fixed.matching)
        assert routed.rounds_used == fixed.rounds_used
        backend = routed.cluster.backend
        assert backend.last_session_shm_frames == 0
        traffic = backend.last_session_traffic
        assert traffic["local_messages"] > 0
        assert traffic["cross_slot_messages"] == 0
        assert traffic["pipe_fallbacks"] == 0
        assert traffic["shm_bytes"] == 0

    def test_tiny_rings_force_pipe_fallbacks_without_changing_a_bit(self):
        """Rings sized at the floor overflow on real rounds; the spilled
        frames take the driver pipe and the run stays bit-identical."""
        graph = gnm_random_graph(64, 220, seed=23)
        fixed = run_matching(graph, backend="fast")
        routed = run_matching(
            graph, backend="resident", resident_slots=2, resident_shm_ring_bytes=1024
        )
        assert sorted(routed.matching) == sorted(fixed.matching)
        assert routed.rounds_used == fixed.rounds_used
        traffic = routed.cluster.backend.last_session_traffic
        assert traffic["cross_slot_messages"] > 0
        assert traffic["pipe_fallbacks"] > 0, "1KiB rings must overflow on this workload"
        assert traffic["local_messages"] > 0

    def test_replan_migrates_machines_across_slots_bit_identically(self):
        """A mid-run shard-count change under two slots rewires machine→slot
        locality; held frames are flushed first, so the run matches the
        fast backend bit for bit and cross-slot traffic is non-vacuous."""
        graph = gnm_random_graph(36, 80, seed=5)
        reference = run_label_propagation(graph, backend="fast")
        plans = {2: lambda cluster: ShardPlan(5, strategy="rendezvous")}
        result = run_label_propagation(
            graph, backend="resident", plans=plans, resident_slots=2
        )
        assert result["labels"] == reference["labels"]
        assert result["rounds"] == reference["rounds"]
        assert result["ledger"] == reference["ledger"]
        session = result["session"]
        assert isinstance(session, ResidentSession)
        assert session.slot_count == 2
        assert result["migrations"] and result["cluster"].replan_history
        traffic = result["cluster"].backend.last_session_traffic
        assert traffic["local_messages"] + traffic["cross_slot_messages"] > 0
