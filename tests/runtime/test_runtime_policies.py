"""Unit tests for the runtime layer's individual policies.

Storage accounting, cap enforcement, transport delivery order, metrics
sampling and backend resolution — each policy tested in isolation, plus the
pinned guarantee that the fast backend still *enforces* the model caps when
they are explicitly enabled (it only relaxes metrics retention, never
enforcement).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DMPCConfig
from repro.exceptions import MachineMemoryExceeded, MessageSizeExceeded, ProtocolError, UnknownMachineError
from repro.mpc import Cluster, Machine, MetricsLedger, RoundRecord, SuperstepProgram, rendezvous_shard
from repro.runtime import (
    BACKENDS,
    CachedStorage,
    FastBackend,
    ParallelBackend,
    ProcessBackend,
    ReferenceBackend,
    ReferenceStorage,
    ShardedBackend,
    ShardPlan,
    resolve_backend,
)


class TokenProbeProgram(SuperstepProgram):
    """Module-level (hence picklable) probe: store + shared in, delta + message out.

    Each machine reads its stored token, adds the shared offset, reports
    the sum to ``m0`` as a message and returns ``(pid, sum)`` as its delta —
    enough to observe *where* the run executed and that every data path
    (store slice, shared slice, sends, deltas) round-trips.
    """

    shared_reads = ("offset",)
    shared_writes = ("results",)
    store_reads = ("token",)

    def run(self, ctx, inbox, shared):
        value = ctx.load(("token", ctx.machine_id), 0) + shared["offset"]
        if ctx.machine_id != "m0":
            ctx.send("m0", "probe", value)
        return (os.getpid(), value)

    def apply(self, shared, machine_id, delta):
        shared["results"][machine_id] = delta


class UndeclaredReadProgram(SuperstepProgram):
    shared_reads = ("missing-key",)

    def run(self, ctx, inbox, shared):  # pragma: no cover - never reached
        return None


def make_cluster(backend: str, **kwargs) -> Cluster:
    config = kwargs.pop("config", None) or DMPCConfig(capacity_n=32, capacity_m=64, backend=backend)
    return Cluster(config, **kwargs)


# ---------------------------------------------------------------------- sizing
class TestFastWordSize:
    """fast_word_size must agree with word_size on every input."""

    payloads = st.recursive(
        st.one_of(
            st.none(),
            st.booleans(),
            st.integers(),
            st.floats(allow_nan=False),
            st.text(max_size=30),
            st.binary(max_size=30),
        ),
        lambda children: st.one_of(
            st.lists(children, max_size=6),
            st.lists(children, max_size=6).map(tuple),
            st.dictionaries(st.one_of(st.integers(), st.text(max_size=8)), children, max_size=6),
            st.lists(st.integers(), max_size=6).map(frozenset),
        ),
        max_leaves=25,
    )

    @settings(max_examples=200, deadline=None)
    @given(payload=payloads)
    def test_matches_reference_on_arbitrary_payloads(self, payload):
        from repro.mpc.sizing import fast_word_size, word_size

        assert fast_word_size(payload) == word_size(payload)

    def test_matches_reference_on_package_objects(self):
        from repro.dynamic_mpc.state import VertexStats
        from repro.mpc.coordinator import HistoryEntry
        from repro.mpc.sizing import fast_word_size, word_size

        class IntSubclass(int):
            pass

        class DictWithWords(dict):
            def dmpc_words(self) -> int:
                return 42

        for payload in (
            VertexStats(degree=3, mate=1, suspended_machines=["edge1", "edge2"]),
            HistoryEntry(seq=1, kind="insert", u=0, v=1),
            [VertexStats(), {"k": (HistoryEntry(seq=2, kind="delete", u=2, v=3), None)}],
            IntSubclass(7),
            DictWithWords(a=1),
            "",
            b"",
        ):
            assert fast_word_size(payload) == word_size(payload)


# --------------------------------------------------------------------- storage
class TestStorageEquivalence:
    ops = st.lists(
        st.one_of(
            st.tuples(st.just("store"), st.integers(0, 7), st.integers(0, 5)),
            st.tuples(st.just("delete"), st.integers(0, 7), st.just(0)),
            st.tuples(st.just("read"), st.just(0), st.just(0)),
        ),
        min_size=1,
        max_size=60,
    )

    @settings(max_examples=60, deadline=None)
    @given(ops=ops)
    def test_cached_matches_reference_accounting(self, ops):
        """used_words agrees at every read point, for interleaved store/delete/read."""
        reference = ReferenceStorage("m", 10**9, strict=False)
        cached = CachedStorage("m", 10**9, strict=False)
        for op, key, size in ops:
            if op == "store":
                value = {("k", i): [i, i + 1] for i in range(size)}
                reference.store(("slot", key), value)
                cached.store(("slot", key), value)
            elif op == "delete":
                reference.delete(("slot", key))
                cached.delete(("slot", key))
            else:
                assert cached.used_words == reference.used_words
        assert cached.used_words == reference.used_words
        assert sorted(map(repr, cached.keys())) == sorted(map(repr, reference.keys()))

    def test_cached_strict_raises_at_same_store(self):
        reference = ReferenceStorage("m", 16, strict=True)
        cached = CachedStorage("m", 16, strict=True)
        for storage in (reference, cached):
            storage.store("a", [1, 2, 3])
        with pytest.raises(MachineMemoryExceeded) as ref_err:
            reference.store("b", list(range(16)))
        with pytest.raises(MachineMemoryExceeded) as fast_err:
            cached.store("b", list(range(16)))
        assert ref_err.value.used == fast_err.value.used
        assert ref_err.value.requested == fast_err.value.requested
        # the failed store must not corrupt the accounting
        assert reference.used_words == cached.used_words

    def test_cached_overwrite_and_delete_release_words(self):
        cached = CachedStorage("m", 10**9, strict=False)
        cached.store("k", list(range(50)))
        assert cached.used_words > 50
        cached.store("k", 1)
        reference = ReferenceStorage("m", 10**9, strict=False)
        reference.store("k", 1)
        assert cached.used_words == reference.used_words
        cached.delete("k")
        assert cached.used_words == 0

    def test_machine_standalone_defaults_to_reference_storage(self):
        machine = Machine("solo", 64)
        assert isinstance(machine.storage, ReferenceStorage)
        machine.store("x", [1, 2, 3])
        assert machine.used_words == machine.storage.used_words


# ------------------------------------------------------------- cap enforcement
class TestFastBackendEnforcesCaps:
    """Pinned guarantee: `fast` relaxes metrics retention, never enforcement."""

    def test_fast_backend_raises_machine_memory_exceeded(self):
        config = DMPCConfig(capacity_n=32, capacity_m=64, strict_memory=True, backend="fast")
        cluster = Cluster(config)
        machine = cluster.add_machine("a", capacity=16)
        with pytest.raises(MachineMemoryExceeded):
            machine.store("big", list(range(64)))

    def test_fast_backend_raises_message_size_exceeded(self):
        cluster = make_cluster("fast", enforce_io_cap=True)
        a = cluster.add_machine("a")
        cluster.add_machine("b")
        a.send("b", "big", None, words=cluster.config.machine_memory + 1)
        with pytest.raises(MessageSizeExceeded):
            cluster.exchange()

    def test_fast_backend_receive_cap_enforced(self):
        cluster = make_cluster("fast", enforce_io_cap=True)
        cluster.add_machines("s", 3)
        cluster.add_machine("sink")
        over = cluster.config.machine_memory // 2 + 1
        for sender in cluster.machines(role="worker"):
            if sender.machine_id != "sink":
                sender.send("sink", "blob", None, words=over)
        with pytest.raises(MessageSizeExceeded) as err:
            cluster.exchange()
        assert err.value.direction == "receive"

    def test_fast_backend_unknown_receiver_raises(self):
        cluster = make_cluster("fast")
        a = cluster.add_machine("a")
        a.send("ghost", "ping", 1)
        with pytest.raises(UnknownMachineError):
            cluster.exchange()

    def test_fast_backend_caps_off_by_default(self):
        cluster = make_cluster("fast")
        a = cluster.add_machine("a")
        cluster.add_machine("b")
        a.send("b", "big", None, words=cluster.config.machine_memory + 1)
        record = cluster.exchange()
        assert record.total_words > cluster.config.machine_memory


# ------------------------------------------------------------------- transport
class TestTransportParity:
    @pytest.mark.parametrize("backend", ["fast", "sharded", "parallel"])
    def test_delivery_order_matches_reference(self, backend):
        """Staging order must not leak into delivery order: registration order rules."""
        inboxes = {}
        for name in ("reference", backend):
            config = DMPCConfig(capacity_n=32, capacity_m=64, backend=name, shard_count=3)
            cluster = Cluster(config)
            machines = cluster.add_machines("m", 7)
            cluster.add_machine("sink")
            # Stage in an order different from registration order.
            for machine in reversed(machines):
                machine.send("sink", "probe", machine.machine_id)
            cluster.exchange()
            inboxes[name] = [msg.payload for msg in cluster.machine("sink").inbox]
        assert inboxes[backend] == inboxes["reference"] == [f"m{i}" for i in range(7)]

    @pytest.mark.parametrize("backend", ["fast", "sharded", "parallel"])
    def test_discard_undelivered_clears_staged_state(self, backend):
        cluster = make_cluster(backend)
        a = cluster.add_machine("a")
        cluster.add_machine("b")
        a.send("b", "x", 1)
        cluster.discard_undelivered()
        record = cluster.exchange()
        assert record.message_count == 0
        assert cluster.machine("b").inbox == []

    @pytest.mark.parametrize("backend", ["sharded", "parallel"])
    def test_message_words_match_reference_sizer(self, backend):
        """The transport message sizer must charge exactly the reference words."""
        payloads = [None, 7, "tagged-payload", [1, 2, (3, 4)], {"k": [5, 6]}, {("a", 1): {2, 3}}]
        words = {}
        for name in ("reference", backend):
            cluster = make_cluster(name)
            a = cluster.add_machine("a")
            cluster.add_machine("b")
            staged = [a.send("b", "t", payload) for payload in payloads]
            words[name] = [msg.words for msg in staged]
        assert words[backend] == words["reference"]

    def test_sharded_io_caps_still_enforced(self):
        cluster = make_cluster("sharded", enforce_io_cap=True)
        a = cluster.add_machine("a")
        cluster.add_machine("b")
        a.send("b", "big", None, words=cluster.config.machine_memory + 1)
        with pytest.raises(MessageSizeExceeded):
            cluster.exchange()

    def test_sharded_unknown_receiver_raises(self):
        cluster = make_cluster("sharded")
        a = cluster.add_machine("a")
        a.send("ghost", "ping", 1)
        with pytest.raises(UnknownMachineError):
            cluster.exchange()


# ------------------------------------------------------------------ accounting
class TestAccountingPolicies:
    def run_rounds(self, backend: str, *, metrics_sampling: int = 0):
        config = DMPCConfig(capacity_n=32, capacity_m=64, backend=backend, metrics_sampling=metrics_sampling)
        cluster = Cluster(config)
        a = cluster.add_machine("a")
        cluster.add_machine("b")
        records = []
        for i in range(4):
            a.send("b", "t", [i, i + 1])
            records.append(cluster.exchange())
            cluster.machine("b").drain()
        return cluster, records

    def test_fast_scalar_aggregates_match_reference(self):
        _, ref_records = self.run_rounds("reference")
        _, fast_records = self.run_rounds("fast")
        for ref, fast in zip(ref_records, fast_records):
            assert (ref.round_index, ref.active_machines, ref.total_words, ref.message_count, ref.max_message_words) == (
                fast.round_index,
                fast.active_machines,
                fast.total_words,
                fast.message_count,
                fast.max_message_words,
            )

    def test_fast_drops_pair_detail_by_default(self):
        cluster, records = self.run_rounds("fast")
        assert all(record.pair_words == {} for record in records)
        assert cluster.ledger.communication_entropy() == 0.0

    def test_fast_metrics_sampling_retains_pair_detail(self):
        cluster, records = self.run_rounds("fast", metrics_sampling=2)
        sampled = [record for record in records if record.pair_words]
        assert sampled and len(sampled) < len(records)
        assert all(record.pair_words == {("a", "b"): record.total_words} for record in sampled)

    def test_reference_always_retains_pair_detail(self):
        _, records = self.run_rounds("reference")
        assert all(record.pair_words for record in records)

    def test_replay_update_public_api(self):
        _, records = self.run_rounds("reference")
        scratch = MetricsLedger()
        scratch.replay_update("copy", records)
        assert scratch.updates[0].label == "copy"
        assert scratch.updates[0].num_rounds == len(records)
        assert scratch.summary().total_words == sum(record.total_words for record in records)


# -------------------------------------------------------------------- sharding
class TestShardPlan:
    def test_index_strategy_round_robins_registration_order(self):
        cluster = make_cluster("reference")
        machines = cluster.add_machines("m", 7)
        plan = ShardPlan(3)
        assert [plan.shard_of(m) for m in machines] == [0, 1, 2, 0, 1, 2, 0]
        buckets = plan.partition(machines)
        assert [len(b) for b in buckets] == [3, 2, 2]
        # relative (registration) order preserved inside every bucket
        for bucket in buckets:
            assert [m.index for m in bucket] == sorted(m.index for m in bucket)

    def test_rendezvous_strategy_uses_machine_ids(self):
        cluster = make_cluster("reference")
        machines = cluster.add_machines("m", 16)
        plan = ShardPlan(4, strategy="rendezvous")
        shards = [plan.shard_of(m) for m in machines]
        assert shards == [rendezvous_shard(m.machine_id, 4) for m in machines]
        assert len(set(shards)) > 1

    def test_rendezvous_shard_is_stable_and_minimally_disruptive(self):
        keys = [f"m{i}" for i in range(200)]
        before = {k: rendezvous_shard(k, 4) for k in keys}
        assert before == {k: rendezvous_shard(k, 4) for k in keys}  # deterministic
        assert set(before.values()) == {0, 1, 2, 3}
        after = {k: rendezvous_shard(k, 5) for k in keys}
        moved = sum(1 for k in keys if before[k] != after[k])
        # HRW property: growing K by one moves only ~1/(K+1) of the keys.
        assert moved < len(keys) // 2

    def test_invalid_plans_rejected(self):
        with pytest.raises(ValueError):
            ShardPlan(0)
        with pytest.raises(ValueError):
            ShardPlan(2, strategy="mystery")
        with pytest.raises(ValueError):
            rendezvous_shard("m0", 0)

    def test_config_shard_count_and_strategy_reach_the_plan(self):
        config = DMPCConfig(capacity_n=32, capacity_m=64, backend="sharded", shard_count=5)
        cluster = Cluster(config)
        assert cluster.backend.plan.shard_count == 5
        assert cluster.backend.plan.strategy == "index"
        hrw = DMPCConfig(
            capacity_n=32, capacity_m=64, backend="parallel", shard_count=4, shard_strategy="rendezvous"
        )
        assert Cluster(hrw).backend.plan.strategy == "rendezvous"
        with pytest.raises(ValueError, match="shard_strategy"):
            DMPCConfig(capacity_n=32, capacity_m=64, shard_strategy="mystery")

    def test_shard_load_diagnostic_sums_round_words(self):
        config = DMPCConfig(capacity_n=32, capacity_m=64, backend="sharded", shard_count=2)
        cluster = Cluster(config)
        machines = cluster.add_machines("m", 4)
        cluster.add_machine("sink")
        for machine in machines:
            machine.send("sink", "t", [1, 2, 3])
        record = cluster.exchange()
        load = cluster._transport.shard_load()
        assert len(load) == 2
        assert sum(load) == record.total_words
        assert all(words > 0 for words in load)  # m0/m2 -> shard 0, m1/m3 -> shard 1


class TestFusedAccountingParity:
    """The sharded fused-delivery records must equal the factory-built ones."""

    def run_rounds(self, backend: str, *, metrics_sampling: int = 0):
        config = DMPCConfig(
            capacity_n=32, capacity_m=64, backend=backend, metrics_sampling=metrics_sampling, shard_count=3
        )
        cluster = Cluster(config)
        machines = cluster.add_machines("m", 5)
        records = []
        for i in range(6):
            for machine in machines[1:]:
                machine.send("m0", "t", [i, machine.index])
            records.append(cluster.exchange())
            cluster.machine("m0").drain()
        return records

    @pytest.mark.parametrize("sampling", [0, 2])
    def test_records_identical_to_fast_factory(self, sampling):
        fast_records = self.run_rounds("fast", metrics_sampling=sampling)
        sharded_records = self.run_rounds("sharded", metrics_sampling=sampling)
        assert sharded_records == fast_records
        for fast_record, sharded_record in zip(fast_records, sharded_records):
            assert sharded_record.pair_words == fast_record.pair_words

    def test_sampling_retains_pair_detail_on_sampled_rounds(self):
        records = self.run_rounds("sharded", metrics_sampling=2)
        sampled = [r for r in records if r.pair_words]
        assert sampled and len(sampled) < len(records)
        for record in sampled:
            assert sum(record.pair_words.values()) == record.total_words

    def test_append_round_guards_the_counter(self):
        ledger = MetricsLedger()
        record = RoundRecord(round_index=5, active_machines=0, total_words=0, message_count=0, max_message_words=0)
        with pytest.raises(ProtocolError):
            ledger.append_round(record)
        assert ledger.next_round_index == 1
        ok = RoundRecord(round_index=1, active_machines=0, total_words=0, message_count=0, max_message_words=0)
        ledger.append_round(ok)
        assert ledger.next_round_index == 2


# ------------------------------------------------------------- shared ledgers
class TestSharedLedgerPolicy:
    """Regression: Cluster must not clobber an externally supplied ledger's policy."""

    def make_config(self, backend: str) -> DMPCConfig:
        return DMPCConfig(capacity_n=32, capacity_m=64, backend=backend)

    def test_conflicting_backend_policies_raise(self):
        ledger = MetricsLedger()
        Cluster(self.make_config("reference"), ledger=ledger)
        with pytest.raises(ProtocolError, match="accounting policy"):
            Cluster(self.make_config("fast"), ledger=ledger)

    def test_same_policy_may_share_a_ledger(self):
        ledger = MetricsLedger()
        first = Cluster(self.make_config("fast"), ledger=ledger)
        second = Cluster(self.make_config("fast"), ledger=ledger)
        assert first.ledger is second.ledger
        a = first.add_machine("a")
        first.add_machine("b")
        a.send("b", "t", 1)
        first.exchange()
        b = second.add_machine("b")
        second.add_machine("c")
        b.send("c", "t", 2)
        second.exchange()
        assert ledger.next_round_index == 3  # one shared round stream

    def test_aggregate_backends_share_one_policy_name(self):
        """fast/sharded/parallel/process condense rounds identically, so they may mix."""
        ledger = MetricsLedger()
        Cluster(self.make_config("fast"), ledger=ledger)
        Cluster(self.make_config("sharded"), ledger=ledger)
        Cluster(self.make_config("parallel"), ledger=ledger)
        Cluster(self.make_config("process"), ledger=ledger)

    @pytest.mark.parametrize("backend", ["fast", "sharded", "parallel", "process"])
    def test_custom_factory_never_clobbered(self, backend):
        def custom_factory(round_index, messages):
            return RoundRecord(
                round_index=round_index, active_machines=-1, total_words=0, message_count=0, max_message_words=0
            )

        ledger = MetricsLedger(round_record_factory=custom_factory)
        cluster = Cluster(self.make_config(backend), ledger=ledger)
        assert ledger.round_record_factory is custom_factory
        assert ledger.record_policy is None
        # ... and every delivery path must actually invoke it, including the
        # sharded fused path (which falls back to the factory path here).
        a = cluster.add_machine("a")
        cluster.add_machine("b")
        a.send("b", "t", [1, 2, 3])
        record = cluster.exchange()
        assert record.active_machines == -1  # unmistakably the custom factory's record
        assert cluster.machine("b").drain()[0].payload == [1, 2, 3]

    def test_factory_reassigned_after_construction_is_honoured(self):
        """The historical pattern: assign ledger.round_record_factory post-construction."""

        def custom_factory(round_index, messages):
            return RoundRecord(
                round_index=round_index, active_machines=-7, total_words=0, message_count=0, max_message_words=0
            )

        cluster = Cluster(self.make_config("sharded"))
        cluster.ledger.round_record_factory = custom_factory
        assert cluster.ledger.record_policy is None  # adoption no longer governs
        a = cluster.add_machine("a")
        cluster.add_machine("b")
        a.send("b", "t", [4, 5])
        record = cluster.exchange()
        assert record.active_machines == -7
        # ... and the shard-load diagnostic stays accurate on the fallback path.
        load = cluster._transport.shard_load()
        assert sum(load) == sum(msg.words for msg in cluster.machine("b").inbox)

    def test_fresh_ledger_adopts_backend_policy(self):
        cluster = Cluster(self.make_config("fast"))
        a = cluster.add_machine("a")
        cluster.add_machine("b")
        a.send("b", "t", [1, 2])
        record = cluster.exchange()
        assert record.pair_words == {}  # aggregate policy, not the stock full-detail one


# -------------------------------------------------------------- superstep pool
class TestParallelSuperstep:
    def make_parallel_cluster(self, *, machines: int = 9, shard_count: int = 4, max_workers: int = 2) -> Cluster:
        config = DMPCConfig(
            capacity_n=64, capacity_m=128, backend="parallel", shard_count=shard_count, max_workers=max_workers
        )
        cluster = Cluster(config)
        cluster.add_machines("m", machines)
        return cluster

    def test_pooled_superstep_matches_sequential(self):
        outcomes = {}
        for backend in ("reference", "parallel"):
            config = DMPCConfig(
                capacity_n=64, capacity_m=128, backend=backend, shard_count=4, max_workers=2
            )
            cluster = Cluster(config)
            cluster.add_machines("m", 9)

            def handler(machine, inbox):
                machine.store("round", len(inbox))
                if machine.machine_id != "m0":
                    machine.send("m0", "report", machine.index)

            record = cluster.superstep(handler)
            outcomes[backend] = (
                record.message_count,
                record.total_words,
                [m.load("round") for m in cluster.machines()],
            )
        assert outcomes["parallel"] == outcomes["reference"]

    def test_pooled_superstep_inbox_delivery_order(self):
        cluster = self.make_parallel_cluster()
        seen: dict[str, list[int]] = {}

        def stage(machine, inbox):
            if machine.machine_id != "m0":
                machine.send("m0", "probe", machine.index)

        cluster.superstep(stage)

        def collect(machine, inbox):
            seen[machine.machine_id] = [msg.payload for msg in inbox]

        cluster.superstep(collect)
        assert seen["m0"] == list(range(1, 9))  # registration order despite pooled staging

    def test_handler_errors_propagate_deterministically(self):
        cluster = self.make_parallel_cluster()

        def exploding(machine, inbox):
            if machine.index % 2 == 1:
                raise RuntimeError(f"boom-{machine.machine_id}")

        with pytest.raises(RuntimeError, match="boom-m1"):
            cluster.superstep(exploding)

    def test_single_worker_falls_back_to_sequential(self):
        cluster = self.make_parallel_cluster(max_workers=1)
        order: list[str] = []

        def handler(machine, inbox):
            order.append(machine.machine_id)

        cluster.superstep(handler)
        assert order == [f"m{i}" for i in range(9)]  # strictly sequential registration order

    def test_default_workers_bounded_by_plan_and_cpu(self):
        import os

        config = DMPCConfig(capacity_n=32, capacity_m=64, shard_count=3)
        backend = ParallelBackend(config)
        assert 1 <= backend.max_workers <= max(1, min(3, os.cpu_count() or 1))
        explicit = ParallelBackend(DMPCConfig(capacity_n=32, capacity_m=64, max_workers=7))
        assert explicit.max_workers == 7


# ------------------------------------------------------------ process backend
class TestProcessSuperstep:
    """The spawn-pool execution path: serialization round trip, fallbacks."""

    def make_process_cluster(
        self, *, machines: int = 9, shard_count: int = 4, max_workers: int = 2, **extra
    ) -> Cluster:
        config = DMPCConfig(
            capacity_n=64,
            capacity_m=128,
            backend="process",
            shard_count=shard_count,
            max_workers=max_workers,
            **extra,
        )
        cluster = Cluster(config)
        for i, machine in enumerate(cluster.add_machines("m", machines)):
            machine.store(("token", machine.machine_id), 10 * i)
        return cluster

    def run_probe(self, cluster: Cluster) -> dict:
        shared = {"offset": 7, "results": {}}
        cluster.superstep(TokenProbeProgram(), shared=shared)
        return shared["results"]

    def assert_probe_observable(self, cluster: Cluster, results: dict) -> None:
        machines = cluster.machines()
        assert [results[m.machine_id][1] for m in machines] == [10 * i + 7 for i in range(len(machines))]
        inbox = cluster.machine("m0").drain("probe")
        # registration delivery order, identical to every in-process backend
        assert [msg.payload for msg in inbox] == [10 * i + 7 for i in range(1, len(machines))]

    def test_pool_round_trip_crosses_process_boundary(self):
        cluster = self.make_process_cluster()
        results = self.run_probe(cluster)
        assert cluster.backend.last_superstep_mode == "pool"
        self.assert_probe_observable(cluster, results)
        worker_pids = {pid for pid, _ in results.values()}
        assert os.getpid() not in worker_pids  # every run happened elsewhere

    def test_single_worker_falls_back_to_sequential(self):
        cluster = self.make_process_cluster(max_workers=1)
        results = self.run_probe(cluster)
        assert cluster.backend.last_superstep_mode == "sequential"
        self.assert_probe_observable(cluster, results)
        assert {pid for pid, _ in results.values()} == {os.getpid()}  # never left the driver

    def test_single_shard_falls_back_to_sequential(self):
        cluster = self.make_process_cluster(shard_count=1)
        results = self.run_probe(cluster)
        assert cluster.backend.last_superstep_mode == "sequential"
        assert {pid for pid, _ in results.values()} == {os.getpid()}

    def test_env_var_selection_round_trip(self, monkeypatch):
        """REPRO_BACKEND=process: resolution, construction and a pooled run."""
        monkeypatch.setenv("REPRO_BACKEND", "process")
        config = DMPCConfig(capacity_n=64, capacity_m=128, shard_count=4, max_workers=2)
        assert resolve_backend(None, config).name == "process"
        cluster = Cluster(config)
        assert isinstance(cluster.backend, ProcessBackend)
        for i, machine in enumerate(cluster.add_machines("m", 9)):
            machine.store(("token", machine.machine_id), 10 * i)
        results = self.run_probe(cluster)
        assert cluster.backend.last_superstep_mode == "pool"
        self.assert_probe_observable(cluster, results)

    def test_closure_handlers_stay_in_process(self):
        """Closures cannot be pickled; they take the inherited thread path."""
        cluster = self.make_process_cluster()
        seen: list[str] = []

        def handler(machine, inbox):
            seen.append(machine.machine_id)

        cluster.superstep(handler)
        assert cluster.backend.last_superstep_mode == "threads"
        assert sorted(seen) == sorted(m.machine_id for m in cluster.machines())

    def test_chunking_knob_regroups_jobs(self):
        cluster = self.make_process_cluster(process_chunk_machines=4)
        buckets = cluster.backend.job_buckets(cluster.machines())
        assert [len(b) for b in buckets] == [4, 4, 1]
        # contiguous registration-order chunks, not shard-plan buckets
        assert [m.machine_id for m in buckets[0]] == ["m0", "m1", "m2", "m3"]
        results = self.run_probe(cluster)
        assert cluster.backend.last_superstep_mode == "pool"
        self.assert_probe_observable(cluster, results)

    def test_undeclared_shared_read_is_a_loud_error(self):
        cluster = self.make_process_cluster()
        with pytest.raises(KeyError, match="missing-key"):
            cluster.superstep(UndeclaredReadProgram(), shared={"offset": 1})

    def test_store_blobs_memoised_until_version_bump(self):
        cluster = self.make_process_cluster()
        backend = cluster.backend
        machine = cluster.machine("m0")
        blob = backend._store_blob(machine, ("token",))
        assert backend._store_blob(machine, ("token",)) is blob  # cached bytes reused
        machine.store(("token", "m0"), 999)
        fresh = backend._store_blob(machine, ("token",))
        assert fresh is not blob

    def test_matches_reference_backend_observables(self):
        outcomes = {}
        for backend in ("reference", "process"):
            config = DMPCConfig(
                capacity_n=64, capacity_m=128, backend=backend, shard_count=4, max_workers=2
            )
            cluster = Cluster(config)
            for i, machine in enumerate(cluster.add_machines("m", 9)):
                machine.store(("token", machine.machine_id), 10 * i)
            shared = {"offset": 3, "results": {}}
            record = cluster.superstep(TokenProbeProgram(), shared=shared)
            outcomes[backend] = (
                record.message_count,
                record.total_words,
                record.active_machines,
                {mid: value for mid, (_, value) in shared["results"].items()},
            )
        assert outcomes["process"] == outcomes["reference"]


# ------------------------------------------------------------------ resolution
class TestBackendResolution:
    def test_registry_names(self):
        assert {"reference", "fast", "sharded", "parallel", "process"} <= set(BACKENDS)

    def test_config_selects_backend(self):
        assert make_cluster("fast").backend.name == "fast"
        assert make_cluster("reference").backend.name == "reference"

    def test_explicit_argument_beats_config(self):
        config = DMPCConfig(capacity_n=32, capacity_m=64, backend="reference")
        assert Cluster(config, backend="fast").backend.name == "fast"

    def test_backend_instance_passthrough(self):
        config = DMPCConfig(capacity_n=32, capacity_m=64)
        backend = FastBackend(config)
        assert Cluster(config, backend=backend).backend is backend

    def test_env_var_fallback(self, monkeypatch):
        config = DMPCConfig(capacity_n=32, capacity_m=64)
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        assert resolve_backend(None, config).name == "fast"
        monkeypatch.delenv("REPRO_BACKEND")
        assert resolve_backend(None, config).name == "reference"

    def test_config_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        config = DMPCConfig(capacity_n=32, capacity_m=64, backend="reference")
        assert resolve_backend(None, config).name == "reference"

    def test_unknown_backend_rejected(self):
        config = DMPCConfig(capacity_n=32, capacity_m=64, backend="warp")
        with pytest.raises(ValueError, match="unknown execution backend"):
            Cluster(config)

    def test_guarantees_surface(self):
        config = DMPCConfig(capacity_n=32, capacity_m=64)
        assert ReferenceBackend(config).guarantees["full_metrics"]
        for backend_cls in (FastBackend, ShardedBackend, ParallelBackend, ProcessBackend):
            guarantees = backend_cls(config).guarantees
            assert guarantees["strict_memory"] and guarantees["io_cap"] and guarantees["exact_accounting"]
            assert not guarantees["full_metrics"]
