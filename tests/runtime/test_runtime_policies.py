"""Unit tests for the runtime layer's individual policies.

Storage accounting, cap enforcement, transport delivery order, metrics
sampling and backend resolution — each policy tested in isolation, plus the
pinned guarantee that the fast backend still *enforces* the model caps when
they are explicitly enabled (it only relaxes metrics retention, never
enforcement).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DMPCConfig
from repro.exceptions import MachineMemoryExceeded, MessageSizeExceeded, UnknownMachineError
from repro.mpc import Cluster, Machine, MetricsLedger
from repro.runtime import (
    BACKENDS,
    CachedStorage,
    FastBackend,
    ReferenceBackend,
    ReferenceStorage,
    resolve_backend,
)


def make_cluster(backend: str, **kwargs) -> Cluster:
    config = kwargs.pop("config", None) or DMPCConfig(capacity_n=32, capacity_m=64, backend=backend)
    return Cluster(config, **kwargs)


# ---------------------------------------------------------------------- sizing
class TestFastWordSize:
    """fast_word_size must agree with word_size on every input."""

    payloads = st.recursive(
        st.one_of(
            st.none(),
            st.booleans(),
            st.integers(),
            st.floats(allow_nan=False),
            st.text(max_size=30),
            st.binary(max_size=30),
        ),
        lambda children: st.one_of(
            st.lists(children, max_size=6),
            st.lists(children, max_size=6).map(tuple),
            st.dictionaries(st.one_of(st.integers(), st.text(max_size=8)), children, max_size=6),
            st.lists(st.integers(), max_size=6).map(frozenset),
        ),
        max_leaves=25,
    )

    @settings(max_examples=200, deadline=None)
    @given(payload=payloads)
    def test_matches_reference_on_arbitrary_payloads(self, payload):
        from repro.mpc.sizing import fast_word_size, word_size

        assert fast_word_size(payload) == word_size(payload)

    def test_matches_reference_on_package_objects(self):
        from repro.dynamic_mpc.state import VertexStats
        from repro.mpc.coordinator import HistoryEntry
        from repro.mpc.sizing import fast_word_size, word_size

        class IntSubclass(int):
            pass

        class DictWithWords(dict):
            def dmpc_words(self) -> int:
                return 42

        for payload in (
            VertexStats(degree=3, mate=1, suspended_machines=["edge1", "edge2"]),
            HistoryEntry(seq=1, kind="insert", u=0, v=1),
            [VertexStats(), {"k": (HistoryEntry(seq=2, kind="delete", u=2, v=3), None)}],
            IntSubclass(7),
            DictWithWords(a=1),
            "",
            b"",
        ):
            assert fast_word_size(payload) == word_size(payload)


# --------------------------------------------------------------------- storage
class TestStorageEquivalence:
    ops = st.lists(
        st.one_of(
            st.tuples(st.just("store"), st.integers(0, 7), st.integers(0, 5)),
            st.tuples(st.just("delete"), st.integers(0, 7), st.just(0)),
            st.tuples(st.just("read"), st.just(0), st.just(0)),
        ),
        min_size=1,
        max_size=60,
    )

    @settings(max_examples=60, deadline=None)
    @given(ops=ops)
    def test_cached_matches_reference_accounting(self, ops):
        """used_words agrees at every read point, for interleaved store/delete/read."""
        reference = ReferenceStorage("m", 10**9, strict=False)
        cached = CachedStorage("m", 10**9, strict=False)
        for op, key, size in ops:
            if op == "store":
                value = {("k", i): [i, i + 1] for i in range(size)}
                reference.store(("slot", key), value)
                cached.store(("slot", key), value)
            elif op == "delete":
                reference.delete(("slot", key))
                cached.delete(("slot", key))
            else:
                assert cached.used_words == reference.used_words
        assert cached.used_words == reference.used_words
        assert sorted(map(repr, cached.keys())) == sorted(map(repr, reference.keys()))

    def test_cached_strict_raises_at_same_store(self):
        reference = ReferenceStorage("m", 16, strict=True)
        cached = CachedStorage("m", 16, strict=True)
        for storage in (reference, cached):
            storage.store("a", [1, 2, 3])
        with pytest.raises(MachineMemoryExceeded) as ref_err:
            reference.store("b", list(range(16)))
        with pytest.raises(MachineMemoryExceeded) as fast_err:
            cached.store("b", list(range(16)))
        assert ref_err.value.used == fast_err.value.used
        assert ref_err.value.requested == fast_err.value.requested
        # the failed store must not corrupt the accounting
        assert reference.used_words == cached.used_words

    def test_cached_overwrite_and_delete_release_words(self):
        cached = CachedStorage("m", 10**9, strict=False)
        cached.store("k", list(range(50)))
        assert cached.used_words > 50
        cached.store("k", 1)
        reference = ReferenceStorage("m", 10**9, strict=False)
        reference.store("k", 1)
        assert cached.used_words == reference.used_words
        cached.delete("k")
        assert cached.used_words == 0

    def test_machine_standalone_defaults_to_reference_storage(self):
        machine = Machine("solo", 64)
        assert isinstance(machine.storage, ReferenceStorage)
        machine.store("x", [1, 2, 3])
        assert machine.used_words == machine.storage.used_words


# ------------------------------------------------------------- cap enforcement
class TestFastBackendEnforcesCaps:
    """Pinned guarantee: `fast` relaxes metrics retention, never enforcement."""

    def test_fast_backend_raises_machine_memory_exceeded(self):
        config = DMPCConfig(capacity_n=32, capacity_m=64, strict_memory=True, backend="fast")
        cluster = Cluster(config)
        machine = cluster.add_machine("a", capacity=16)
        with pytest.raises(MachineMemoryExceeded):
            machine.store("big", list(range(64)))

    def test_fast_backend_raises_message_size_exceeded(self):
        cluster = make_cluster("fast", enforce_io_cap=True)
        a = cluster.add_machine("a")
        cluster.add_machine("b")
        a.send("b", "big", None, words=cluster.config.machine_memory + 1)
        with pytest.raises(MessageSizeExceeded):
            cluster.exchange()

    def test_fast_backend_receive_cap_enforced(self):
        cluster = make_cluster("fast", enforce_io_cap=True)
        cluster.add_machines("s", 3)
        cluster.add_machine("sink")
        over = cluster.config.machine_memory // 2 + 1
        for sender in cluster.machines(role="worker"):
            if sender.machine_id != "sink":
                sender.send("sink", "blob", None, words=over)
        with pytest.raises(MessageSizeExceeded) as err:
            cluster.exchange()
        assert err.value.direction == "receive"

    def test_fast_backend_unknown_receiver_raises(self):
        cluster = make_cluster("fast")
        a = cluster.add_machine("a")
        a.send("ghost", "ping", 1)
        with pytest.raises(UnknownMachineError):
            cluster.exchange()

    def test_fast_backend_caps_off_by_default(self):
        cluster = make_cluster("fast")
        a = cluster.add_machine("a")
        cluster.add_machine("b")
        a.send("b", "big", None, words=cluster.config.machine_memory + 1)
        record = cluster.exchange()
        assert record.total_words > cluster.config.machine_memory


# ------------------------------------------------------------------- transport
class TestTransportParity:
    def test_delivery_order_matches_reference(self):
        """Staging order must not leak into delivery order: registration order rules."""
        inboxes = {}
        for backend in ("reference", "fast"):
            cluster = make_cluster(backend)
            machines = cluster.add_machines("m", 4)
            cluster.add_machine("sink")
            # Stage in an order different from registration order.
            for machine in reversed(machines):
                machine.send("sink", "probe", machine.machine_id)
            cluster.exchange()
            inboxes[backend] = [msg.payload for msg in cluster.machine("sink").inbox]
        assert inboxes["fast"] == inboxes["reference"] == ["m0", "m1", "m2", "m3"]

    def test_discard_undelivered_clears_staged_state(self):
        cluster = make_cluster("fast")
        a = cluster.add_machine("a")
        cluster.add_machine("b")
        a.send("b", "x", 1)
        cluster.discard_undelivered()
        record = cluster.exchange()
        assert record.message_count == 0
        assert cluster.machine("b").inbox == []


# ------------------------------------------------------------------ accounting
class TestAccountingPolicies:
    def run_rounds(self, backend: str, *, metrics_sampling: int = 0):
        config = DMPCConfig(capacity_n=32, capacity_m=64, backend=backend, metrics_sampling=metrics_sampling)
        cluster = Cluster(config)
        a = cluster.add_machine("a")
        cluster.add_machine("b")
        records = []
        for i in range(4):
            a.send("b", "t", [i, i + 1])
            records.append(cluster.exchange())
            cluster.machine("b").drain()
        return cluster, records

    def test_fast_scalar_aggregates_match_reference(self):
        _, ref_records = self.run_rounds("reference")
        _, fast_records = self.run_rounds("fast")
        for ref, fast in zip(ref_records, fast_records):
            assert (ref.round_index, ref.active_machines, ref.total_words, ref.message_count, ref.max_message_words) == (
                fast.round_index,
                fast.active_machines,
                fast.total_words,
                fast.message_count,
                fast.max_message_words,
            )

    def test_fast_drops_pair_detail_by_default(self):
        cluster, records = self.run_rounds("fast")
        assert all(record.pair_words == {} for record in records)
        assert cluster.ledger.communication_entropy() == 0.0

    def test_fast_metrics_sampling_retains_pair_detail(self):
        cluster, records = self.run_rounds("fast", metrics_sampling=2)
        sampled = [record for record in records if record.pair_words]
        assert sampled and len(sampled) < len(records)
        assert all(record.pair_words == {("a", "b"): record.total_words} for record in sampled)

    def test_reference_always_retains_pair_detail(self):
        _, records = self.run_rounds("reference")
        assert all(record.pair_words for record in records)

    def test_replay_update_public_api(self):
        _, records = self.run_rounds("reference")
        scratch = MetricsLedger()
        scratch.replay_update("copy", records)
        assert scratch.updates[0].label == "copy"
        assert scratch.updates[0].num_rounds == len(records)
        assert scratch.summary().total_words == sum(record.total_words for record in records)


# ------------------------------------------------------------------ resolution
class TestBackendResolution:
    def test_registry_names(self):
        assert {"reference", "fast"} <= set(BACKENDS)

    def test_config_selects_backend(self):
        assert make_cluster("fast").backend.name == "fast"
        assert make_cluster("reference").backend.name == "reference"

    def test_explicit_argument_beats_config(self):
        config = DMPCConfig(capacity_n=32, capacity_m=64, backend="reference")
        assert Cluster(config, backend="fast").backend.name == "fast"

    def test_backend_instance_passthrough(self):
        config = DMPCConfig(capacity_n=32, capacity_m=64)
        backend = FastBackend(config)
        assert Cluster(config, backend=backend).backend is backend

    def test_env_var_fallback(self, monkeypatch):
        config = DMPCConfig(capacity_n=32, capacity_m=64)
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        assert resolve_backend(None, config).name == "fast"
        monkeypatch.delenv("REPRO_BACKEND")
        assert resolve_backend(None, config).name == "reference"

    def test_config_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        config = DMPCConfig(capacity_n=32, capacity_m=64, backend="reference")
        assert resolve_backend(None, config).name == "reference"

    def test_unknown_backend_rejected(self):
        config = DMPCConfig(capacity_n=32, capacity_m=64, backend="warp")
        with pytest.raises(ValueError, match="unknown execution backend"):
            Cluster(config)

    def test_guarantees_surface(self):
        config = DMPCConfig(capacity_n=32, capacity_m=64)
        assert ReferenceBackend(config).guarantees["full_metrics"]
        fast = FastBackend(config).guarantees
        assert fast["strict_memory"] and fast["io_cap"] and fast["exact_accounting"]
        assert not fast["full_metrics"]
