"""Shard-plan autotuning and rendezvous-hash placement properties.

Two satellite guarantees of the sharded execution layer:

* :func:`repro.mpc.partition.rendezvous_shard` must spread keys
  near-uniformly and move almost nothing when the shard count changes —
  the properties future distributed-shard deployments lean on when
  resizing;
* :meth:`ShardPlan.rebalance` must turn the transport's per-machine load
  diagnostic into an explicitly-pinned plan that flattens skew the
  round-robin/rendezvous rules cannot see.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DMPCConfig
from repro.mpc import Cluster, Machine, rendezvous_shard
from repro.runtime import ShardPlan


def shard_histogram(keys: list[str], shard_count: int) -> Counter:
    return Counter(rendezvous_shard(key, shard_count) for key in keys)


# ------------------------------------------------------------ rendezvous hash
class TestRendezvousProperties:
    KEYS = [f"m{i}" for i in range(2000)]

    def test_near_uniform_balance(self):
        shard_count = 8
        histogram = shard_histogram(self.KEYS, shard_count)
        expected = len(self.KEYS) / shard_count
        assert set(histogram) == set(range(shard_count))  # every shard populated
        for shard, count in histogram.items():
            # 2000 keys over 8 shards is ~binomial(2000, 1/8): mean 250,
            # sigma ~15 — a +-40% band is ~6 sigma, loose enough to never
            # flake yet tight enough to catch a broken weight function.
            assert 0.6 * expected <= count <= 1.4 * expected, f"shard {shard} holds {count}"

    @settings(max_examples=25, deadline=None)
    @given(shard_count=st.integers(2, 12), salt=st.integers(0, 1000))
    def test_assignment_is_a_pure_function_of_key_and_count(self, shard_count, salt):
        """Adding/removing *machines* never moves any other machine.

        The assignment consults nothing but ``(key, shard_count)``, so the
        machine population is irrelevant by construction — pinned here
        because it is the property that makes rendezvous plans stable as
        clusters grow.
        """
        keys = [f"w{salt}-{i}" for i in range(50)]
        before = {key: rendezvous_shard(key, shard_count) for key in keys}
        # "add machines" / "remove machines": assignments recomputed over a
        # different population are bit-identical per key.
        subset = keys[::2]
        assert {key: rendezvous_shard(key, shard_count) for key in subset} == {
            key: before[key] for key in subset
        }

    @settings(max_examples=20, deadline=None)
    @given(shard_count=st.integers(1, 10))
    def test_growing_by_one_shard_moves_only_keys_onto_the_new_shard(self, shard_count):
        moved = {
            key
            for key in self.KEYS[:600]
            if rendezvous_shard(key, shard_count) != rendezvous_shard(key, shard_count + 1)
        }
        # every moved key lands on the newly added shard ...
        assert all(rendezvous_shard(key, shard_count + 1) == shard_count for key in moved)
        # ... and roughly a 1/(K+1) fraction moves (binomial, generous band)
        expected = 600 / (shard_count + 1)
        assert moved, "growing the shard set must hand the new shard some keys"
        assert len(moved) <= 2.0 * expected

    @settings(max_examples=20, deadline=None)
    @given(shard_count=st.integers(2, 10))
    def test_shrinking_by_one_shard_moves_only_the_removed_shards_keys(self, shard_count):
        for key in self.KEYS[:400]:
            before = rendezvous_shard(key, shard_count)
            after = rendezvous_shard(key, shard_count - 1)
            if before != shard_count - 1:  # key not on the removed shard
                assert after == before


# ----------------------------------------------------------------- rebalancing
def make_machines(count: int) -> list[Machine]:
    return [Machine(f"w{i}", 64, index=i) for i in range(count)]


def shard_loads(plan: ShardPlan, machines: list[Machine], loads: dict[str, int]) -> list[int]:
    totals = [0] * plan.shard_count
    for machine in machines:
        totals[plan.shard_of(machine)] += loads.get(machine.machine_id, 0)
    return totals


class TestShardPlanRebalance:
    def test_rebalance_flattens_a_skewed_owner_map(self):
        """A hot machine the round-robin rule pairs with others gets isolated."""
        machines = make_machines(8)
        # the skew a hash-partitioned owner map can produce: one machine
        # owns the hub vertices and sends 100x the words of the others
        loads = {"w0": 1000, **{f"w{i}": 10 for i in range(1, 8)}}
        plan = ShardPlan(4)  # index plan: w0 shares shard 0 with w4
        before = shard_loads(plan, machines, loads)
        assert max(before) == 1010

        proposal = plan.rebalance(loads)
        after = shard_loads(proposal, machines, loads)
        assert max(after) == 1000  # the hot machine now owns a shard alone
        assert sum(after) == sum(before)  # no load invented or lost
        assert proposal.shard_count == plan.shard_count
        assert proposal.strategy == plan.strategy
        # LPT puts every named machine somewhere valid and deterministic
        assert proposal.assignment is not None
        assert set(proposal.assignment) == set(loads)
        assert plan.rebalance(loads).assignment == proposal.assignment

    def test_rebalance_balances_uniform_loads(self):
        machines = make_machines(12)
        loads = {f"w{i}": 10 for i in range(12)}
        proposal = ShardPlan(4).rebalance(loads)
        assert shard_loads(proposal, machines, loads) == [30, 30, 30, 30]

    def test_rebalance_can_change_the_shard_count(self):
        loads = {f"w{i}": i + 1 for i in range(6)}
        proposal = ShardPlan(2).rebalance(loads, shard_count=3)
        assert proposal.shard_count == 3
        assert set(proposal.assignment.values()) <= {0, 1, 2}

    def test_unnamed_machines_keep_the_strategy_rule(self):
        machines = make_machines(6)
        proposal = ShardPlan(3).rebalance({"w0": 50})
        assert proposal.shard_of(machines[0]) == proposal.assignment["w0"]
        for machine in machines[1:]:
            assert proposal.shard_of(machine) == machine.index % 3

    def test_assignment_validation(self):
        with pytest.raises(ValueError, match="outside"):
            ShardPlan(2, assignment={"w0": 5})


# ------------------------------------------------- transport load diagnostics
class TestMachineLoadDiagnostic:
    def test_machine_load_feeds_rebalance(self):
        config = DMPCConfig(capacity_n=32, capacity_m=64, backend="sharded", shard_count=3)
        cluster = Cluster(config)
        machines = cluster.add_machines("w", 6)
        machines[0].send("w1", "bulk", list(range(64)))
        machines[0].send("w2", "bulk", list(range(64)))
        machines[3].send("w4", "ping", 1)
        cluster.exchange()

        load = cluster._transport.machine_load()
        assert set(load) == {"w0", "w3"}  # only actual senders appear
        assert load["w0"] > load["w3"]
        assert sum(load.values()) == sum(cluster._transport.shard_load())

        proposal = cluster._transport.plan.rebalance(load)
        # the heavy sender is pinned first, onto the lightest (first) shard
        assert proposal.assignment["w0"] != proposal.assignment["w3"]
