"""Fused round blocks: barrier elision must change nothing observable.

The resident backend's fused blocks (``ResidentSession.run_block``) run up
to K consecutive worker-drivable supersteps on one driver round trip —
workers loop locally, self-apply their own deltas, exchange frames over
the same-slot pending maps and cross-slot shm rings, and synchronize on a
lightweight shared-memory round barrier.  The contract is the usual one,
sharpened: not just identical solutions but **bit-identical per-round
RoundRecords** — fusion elides the driver barrier, never the accounting.

These tests drive the fusion-shaped static workloads (connected
components' ``[propose, apply]`` pairs, maximal matching's
``[announce, propose]`` pairs) with fusion on and off under every backend
configuration of the equivalence matrix, including the two-slot
``resident-shm`` configuration with a deliberately tiny ring that forces
a mid-block stop and pipe fallback.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import FUSE_ENV_VAR
from repro.exceptions import ProtocolError
from repro.graph.generators import gnm_random_graph
from repro.runtime.resident import ResidentSession
from repro.runtime.sharding import ShardPlan
from repro.static_mpc import StaticConnectedComponents, StaticMaximalMatching

#: the equivalence matrix: every execution strategy, with ``resident-shm``
#: the resident backend pinned to two slots (cross-slot frames ride shm).
BACKENDS = ("reference", "fast", "sharded", "parallel", "process", "resident", "resident-shm")

SHARD_COUNT = 3
MAX_WORKERS = 2


def backend_kwargs(backend: str) -> dict:
    kwargs: dict = {"backend": "resident" if backend == "resident-shm" else backend}
    if backend in ("sharded", "parallel", "process", "resident", "resident-shm"):
        kwargs["shard_count"] = SHARD_COUNT
    if backend in ("parallel", "process", "resident", "resident-shm"):
        kwargs["max_workers"] = MAX_WORKERS
    if backend == "resident-shm":
        kwargs["resident_slots"] = 2
    return kwargs


@contextmanager
def fuse_setting(value: str | None):
    """Pin ``REPRO_FUSE_ROUNDS`` for the scope (None restores the default)."""
    old = os.environ.get(FUSE_ENV_VAR)
    if value is None:
        os.environ.pop(FUSE_ENV_VAR, None)
    else:
        os.environ[FUSE_ENV_VAR] = value
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(FUSE_ENV_VAR, None)
        else:
            os.environ[FUSE_ENV_VAR] = old


def round_records(ledger) -> list:
    """Every recorded round, bit for bit — including the pair breakdown
    (excluded from dataclass equality, so compared explicitly here)."""
    return [
        (
            update.label,
            [
                (
                    record.round_index,
                    record.active_machines,
                    record.total_words,
                    record.message_count,
                    record.max_message_words,
                    sorted(record.pair_words.items()),
                )
                for record in update.rounds
            ],
        )
        for update in ledger.updates
    ]


def run_cc(graph, backend: str, fuse: str, **extra):
    with fuse_setting(fuse):
        algorithm = StaticConnectedComponents(graph, **backend_kwargs(backend), **extra)
        algorithm.run()
    return algorithm


def run_matching(graph, backend: str, fuse: str, **extra):
    with fuse_setting(fuse):
        algorithm = StaticMaximalMatching(graph, seed=13, **backend_kwargs(backend), **extra)
        algorithm.run()
    return algorithm


def assert_bit_identical(fused, unfused) -> None:
    assert round_records(fused.cluster.ledger) == round_records(unfused.cluster.ledger)


class TestFusedVsUnfusedBitIdentity:
    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_connected_components_property(self, seed):
        """Property: fusion changes neither the labels/forest nor a single
        per-round record, under any backend configuration."""
        graph = gnm_random_graph(28, 64, seed=seed)
        for backend in BACKENDS:
            fused = run_cc(graph, backend, "auto")
            unfused = run_cc(graph, backend, "off")
            assert fused.labels == unfused.labels, backend
            assert fused.spanning_forest() == unfused.spanning_forest(), backend
            assert fused.rounds_used == unfused.rounds_used, backend
            assert_bit_identical(fused, unfused)
            if backend in ("resident", "resident-shm"):
                assert fused.cluster.ledger.fused_rounds > 0, backend
                assert unfused.cluster.ledger.fused_rounds == 0, backend

    def test_maximal_matching_all_backends(self):
        graph = gnm_random_graph(32, 96, seed=17)
        for backend in BACKENDS:
            fused = run_matching(graph, backend, "auto")
            unfused = run_matching(graph, backend, "off")
            assert fused.matching == unfused.matching, backend
            assert fused.rounds_used == unfused.rounds_used, backend
            assert_bit_identical(fused, unfused)

    def test_fuse_cap_still_identical(self):
        """An explicit block cap (K=2) segments differently but must still
        deliver the same rounds."""
        graph = gnm_random_graph(30, 70, seed=23)
        capped = run_cc(graph, "resident", "2")
        unfused = run_cc(graph, "resident", "off")
        assert capped.labels == unfused.labels
        assert_bit_identical(capped, unfused)
        assert capped.cluster.ledger.fused_rounds > 0


class TestDriverRoundTrips:
    def test_fusion_halves_driver_round_trips(self):
        """Every CC iteration is a fusable [propose, apply] pair, so the
        trip count must drop by at least 2x (the acceptance bound)."""
        graph = gnm_random_graph(48, 120, seed=3)
        fused = run_cc(graph, "resident", "auto")
        unfused = run_cc(graph, "resident", "off")
        fused_trips = fused.cluster.ledger.driver_round_trips
        unfused_trips = unfused.cluster.ledger.driver_round_trips
        assert fused_trips > 0 and unfused_trips > 0
        assert fused_trips * 2 <= unfused_trips, (fused_trips, unfused_trips)
        # every delivered round ran inside a fused block
        assert fused.cluster.ledger.fused_rounds == unfused.cluster.ledger.total_rounds()
        assert fused.cluster.backend.last_superstep_mode == "resident-fused"

    def test_unfused_counts_one_trip_per_round(self):
        graph = gnm_random_graph(24, 50, seed=9)
        unfused = run_cc(graph, "resident", "off")
        ledger = unfused.cluster.ledger
        assert ledger.driver_round_trips == ledger.total_rounds()


class TestTinyRingFallback:
    def test_mid_block_stop_and_pipe_fallback_stay_bit_identical(self):
        """Two slots with a 1024-byte ring: cross-slot frames overflow, the
        worker loop stops at the boundary and hands the overflow to the
        driver's pipe forward path — the run must still match the roomy-ring
        and unfused runs bit for bit."""
        graph = gnm_random_graph(64, 220, seed=11)
        tiny = dict(resident_slots=2, resident_shm_ring_bytes=1024)
        fused = run_cc(graph, "resident", "auto", **tiny)
        unfused = run_cc(graph, "resident", "off", **tiny)
        roomy = run_cc(graph, "resident-shm", "auto")
        assert fused.labels == unfused.labels == roomy.labels
        assert_bit_identical(fused, unfused)
        assert_bit_identical(fused, roomy)
        # non-vacuous: blocks genuinely formed AND the tiny ring genuinely
        # forced overflow frames onto the pipe mid-block
        assert fused.cluster.ledger.fused_rounds > 0
        traffic = fused.cluster.ledger.traffic_totals()
        assert traffic["pipe_fallbacks"] > 0, traffic
        # the roomy ring kept everything on shm — proves the tiny ring (not
        # the workload) caused the fallbacks
        roomy_traffic = roomy.cluster.ledger.traffic_totals()
        assert roomy_traffic["pipe_fallbacks"] == 0, roomy_traffic
        assert roomy_traffic["shm_bytes"] > 0, roomy_traffic


class TestFusedBlockBoundaries:
    def test_replan_rejected_mid_block(self):
        """A live re-plan cannot land inside a fused block: workers are
        mid-loop and hold the old locality."""
        graph = gnm_random_graph(24, 50, seed=5)
        algorithm = StaticConnectedComponents(graph, **backend_kwargs("resident"))
        cluster = algorithm.cluster
        state = {"labels": {v: v for v in graph.vertices}, "via": {}, "changed_flags": {}}
        with cluster.session(state) as session:
            assert isinstance(session, ResidentSession)
            session.in_fused_block = True
            try:
                with pytest.raises(ProtocolError, match="fused round block"):
                    cluster.replan(ShardPlan(4, strategy="rendezvous"))
            finally:
                session.in_fused_block = False
        # outside a block the same re-plan is accepted
        assert cluster.replan(ShardPlan(4, strategy="rendezvous"))

    def test_autotune_defers_to_block_boundary(self):
        """``replan_every`` ticks that fire during a block's finish loop are
        deferred to the block boundary — and still adopted, so the autotune
        loop keeps closing under fusion (with the usual bit-identity)."""
        graph = gnm_random_graph(40, 90, seed=11)
        fixed = run_cc(graph, "fast", "off")
        tuned = run_cc(graph, "resident", "auto", replan_every=4)
        assert tuned.labels == fixed.labels
        assert tuned.rounds_used == fixed.rounds_used
        assert tuned.cluster.ledger.fused_rounds > 0
        assert tuned.cluster.replan_history, "deferred autotune ticks must still adopt plans"
