"""Regression tests for the ``REPRO_CHECK_CONTRACTS`` shadow oracle.

Three guarantees are pinned here:

1. **Worker parity** — with checking on, the sequential *and* thread-pooled
   in-process strategies raise on an undeclared ``shared[key]`` read exactly
   like a ``process``/``resident`` worker holding only the declared slice
   would, and silently hand back defaults for undeclared ``shared.get`` /
   ``ctx.load`` exactly like a worker would.  Without the env var, the old
   permissive behavior is untouched.
2. **Loud divergence** — ``apply`` writing an undeclared shared key and a
   ``reads_inbox = False`` program reading its inbox raise
   :class:`ContractViolationError` (a worker would silently diverge there).
3. **Static/dynamic agreement** — running every shipped static-MPC
   algorithm under the oracle produces observations that match both the
   programs' declarations and the facts :mod:`repro.lint` extracts from
   their source, key for key and prefix for prefix.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.config import DMPCConfig
from repro.exceptions import ContractViolationError
from repro.graph.generators import gnm_random_graph, random_weighted_graph
from repro.lint import analyze_paths
from repro.mpc import Cluster, SuperstepProgram
from repro.mpc.contract import (
    CHECK_ENV_VAR,
    contract_checking_enabled,
    observation_for,
    observations,
    reset_observations,
)
from repro.static_mpc import StaticBoruvkaMST, StaticConnectedComponents, StaticMaximalMatching

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_broken_fixtures():
    """The deliberately-broken lint fixtures, loaded by path (tests/lint is not a sibling package)."""
    path = REPO_ROOT / "tests" / "lint" / "fixtures_broken.py"
    spec = importlib.util.spec_from_file_location("lint_fixtures_broken", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


broken = _load_broken_fixtures()


class GetProbeProgram(SuperstepProgram):
    """Reads an undeclared key via ``shared.get`` and reports what it saw."""

    shared_reads = ("declared",)
    shared_writes = ("results",)

    def run(self, ctx, inbox, shared):
        return shared.get("ghost", -1) + shared["declared"]

    def apply(self, shared, machine_id, delta):
        shared["results"][machine_id] = delta


class DirectApplyWriteProgram(SuperstepProgram):
    """``apply`` assigns an undeclared top-level shared key directly."""

    shared_reads = ("counts",)

    def run(self, ctx, inbox, shared):
        return len(shared["counts"])

    def apply(self, shared, machine_id, delta):
        shared["totals"] = {machine_id: delta}


class StoreProbeProgram(SuperstepProgram):
    """Loads a declared and an undeclared store prefix and reports both."""

    shared_reads = ()
    shared_writes = ("results",)
    store_reads = ("token",)

    def run(self, ctx, inbox, shared):
        return (ctx.load(("token", ctx.machine_id), 0), ctx.load(("secret", ctx.machine_id), -1))

    def apply(self, shared, machine_id, delta):
        shared["results"][machine_id] = delta


def make_cluster(backend: str = "reference", *, machines: int = 3, **config_kwargs) -> Cluster:
    config = DMPCConfig(capacity_n=64, capacity_m=128, backend=backend, **config_kwargs)
    cluster = Cluster(config)
    cluster.add_machines("m", machines)
    return cluster


def make_thread_cluster(*, machines: int = 6) -> Cluster:
    return make_cluster("parallel", machines=machines, shard_count=3, max_workers=2)


@pytest.fixture()
def checking(monkeypatch):
    monkeypatch.setenv(CHECK_ENV_VAR, "1")
    reset_observations()
    yield
    reset_observations()


@pytest.fixture()
def unchecked(monkeypatch):
    monkeypatch.delenv(CHECK_ENV_VAR, raising=False)


class TestSwitch:
    def test_disabled_by_default(self, unchecked):
        assert not contract_checking_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv(CHECK_ENV_VAR, value)
        assert contract_checking_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "off"])
    def test_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv(CHECK_ENV_VAR, value)
        assert not contract_checking_enabled()


class TestWorkerParity:
    """Satellite: in-process backends behave exactly like a worker under checking."""

    @pytest.mark.parametrize("make", [make_cluster, make_thread_cluster], ids=["sequential", "threads"])
    def test_undeclared_subscript_read_raises_like_a_worker(self, checking, make):
        cluster = make()
        shared = {"labels": {0: 0}}  # present in shared — a worker slice still would not ship it
        with pytest.raises(KeyError, match=r"shared\['labels'\].*worker"):
            cluster.superstep(broken.UndeclaredSharedReadProgram(), shared=shared)

    @pytest.mark.parametrize("make", [make_cluster, make_thread_cluster], ids=["sequential", "threads"])
    def test_same_program_passes_without_checking(self, unchecked, make):
        cluster = make()
        record = cluster.superstep(broken.UndeclaredSharedReadProgram(), shared={"labels": {0: 0}})
        assert record is not None  # the historical in-process permissiveness, unchanged

    def test_undeclared_get_returns_default_and_is_recorded(self, checking):
        cluster = make_cluster()
        shared = {"declared": 10, "ghost": 42, "results": {}}
        cluster.superstep(GetProbeProgram(), shared=shared)
        # every machine saw the get default (worker parity), not the live value 42
        assert set(shared["results"].values()) == {9}
        obs = observation_for(GetProbeProgram)
        assert obs.undeclared_shared_reads == {"ghost"}
        assert obs.run_shared_reads == {"declared", "ghost"}

    def test_undeclared_store_load_returns_default_and_is_recorded(self, checking):
        cluster = make_cluster()
        for machine in cluster.machines():
            machine.store(("token", machine.machine_id), 7)
            machine.store(("secret", machine.machine_id), 99)
        shared = {"results": {}}
        cluster.superstep(StoreProbeProgram(), shared=shared)
        # declared prefix served from the store, undeclared one from the default
        assert set(shared["results"].values()) == {(7, -1)}
        obs = observation_for(StoreProbeProgram)
        assert obs.store_prefixes == {"token", "secret"}
        assert obs.undeclared_store_prefixes == {"secret"}

    @pytest.mark.parametrize("make", [make_cluster, make_thread_cluster], ids=["sequential", "threads"])
    def test_undeclared_nested_apply_write_raises_like_a_worker(self, checking, make):
        # shared["totals"][mid] = delta *reads* the undeclared top-level key
        # first — a resident worker's replay copy raises exactly this KeyError
        cluster = make()
        shared = {"counts": {0: 1}, "totals": {}}
        with pytest.raises(KeyError, match=r"shared\['totals'\].*resident worker"):
            cluster.superstep(broken.UndeclaredApplyWriteProgram(), shared=shared)

    @pytest.mark.parametrize("make", [make_cluster, make_thread_cluster], ids=["sequential", "threads"])
    def test_undeclared_direct_apply_write_raises(self, checking, make):
        # a direct shared["totals"] = ... would be silently absorbed by a
        # worker's copy, so the oracle raises the loud contract error instead
        cluster = make()
        shared = {"counts": {0: 1}}
        with pytest.raises(ContractViolationError, match=r"shared\['totals'\].*shared_writes"):
            cluster.superstep(DirectApplyWriteProgram(), shared=shared)

    def test_inbox_liar_raises(self, checking):
        cluster = make_cluster()
        with pytest.raises(ContractViolationError, match="reads_inbox = False"):
            cluster.superstep(broken.InboxLiarProgram(), shared={})

    def test_violations_pass_silently_without_checking(self, unchecked):
        cluster = make_cluster()
        shared = {"counts": {0: 1}, "totals": {}}
        cluster.superstep(broken.UndeclaredApplyWriteProgram(), shared=shared)
        assert set(shared["totals"]) == {m.machine_id for m in cluster.machines()}
        cluster.superstep(broken.InboxLiarProgram(), shared={})


class TestObservationBookkeeping:
    def test_observation_identity_and_reset(self, checking):
        first = observation_for(GetProbeProgram)
        assert observation_for(GetProbeProgram()) is first
        assert "GetProbeProgram" in observations()
        reset_observations()
        assert observations() == {}
        assert observation_for(GetProbeProgram) is not first


class TestStaticDynamicAgreement:
    """The shadow oracle and ``repro.lint`` must agree on every shipped program."""

    PROGRAMS = {
        "LabelProposeProgram": "StaticConnectedComponents",
        "CSRLabelProposeProgram": "StaticConnectedComponents",
        "LabelApplyProgram": "StaticConnectedComponents",
        "MatchingProposeProgram": "StaticMaximalMatching",
        "MatchingAnnounceProgram": "StaticMaximalMatching",
        "CSRMatchingProposeProgram": "StaticMaximalMatching",
        "CSRMatchingAnnounceProgram": "StaticMaximalMatching",
        "MSTCandidateProgram": "StaticBoruvkaMST",
        "CSRMSTCandidateProgram": "StaticBoruvkaMST",
    }

    @pytest.fixture(scope="class")
    def observed(self):
        """Run every static algorithm under the oracle, once per layout."""
        import os

        old = os.environ.get(CHECK_ENV_VAR)
        os.environ[CHECK_ENV_VAR] = "1"
        reset_observations()
        try:
            for layout in ("dict", "csr"):
                StaticConnectedComponents(
                    gnm_random_graph(40, 60, seed=7), backend="reference", layout=layout
                ).run()
                # dense enough that matching needs several proposal rounds, so
                # the conditional prune path in the propose apply executes
                StaticMaximalMatching(
                    gnm_random_graph(60, 150, seed=3), backend="reference", layout=layout
                ).run()
                StaticBoruvkaMST(
                    random_weighted_graph(30, 60, seed=7), backend="reference", layout=layout
                ).run()
            return observations()
        finally:
            if old is None:
                os.environ.pop(CHECK_ENV_VAR, None)
            else:
                os.environ[CHECK_ENV_VAR] = old
            reset_observations()

    @pytest.fixture(scope="class")
    def static_facts(self):
        return analyze_paths([REPO_ROOT / "src"]).facts

    def test_every_shipped_program_was_observed(self, observed):
        assert set(self.PROGRAMS) <= set(observed)

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_runtime_observation_is_clean(self, observed, name):
        obs = observed[name]
        assert obs.clean, (
            f"{name} touched undeclared state at runtime: "
            f"reads={sorted(map(str, obs.undeclared_shared_reads))} "
            f"store={sorted(map(str, obs.undeclared_store_prefixes))} "
            f"apply={sorted(map(str, obs.undeclared_apply_accesses))}"
        )

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_static_extraction_matches_runtime_reality(self, observed, static_facts, name):
        obs, facts = observed[name], static_facts[name]
        assert obs.run_shared_reads == facts.run_shared_reads
        assert obs.store_prefixes == facts.store_prefixes
        assert obs.apply_accesses == facts.apply_accesses

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_declarations_are_fully_exercised(self, observed, name):
        """Dynamic confirmation of RP107: everything declared is actually used."""
        import repro.static_mpc.connected_components as cc
        import repro.static_mpc.maximal_matching as mm
        import repro.static_mpc.mst as mst

        cls = getattr(cc, name, None) or getattr(mm, name, None) or getattr(mst, name)
        obs = observed[name]
        assert obs.run_shared_reads == set(cls.shared_reads)
        assert obs.store_prefixes == set(cls.store_reads or ())
        assert set(cls.shared_writes or ()) <= obs.apply_accesses
