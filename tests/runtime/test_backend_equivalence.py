"""Cross-backend equivalence: optimised backends must change nothing observable.

The execution-backend contract (:mod:`repro.runtime.base`) is that backends
may change *how* a simulation executes but never *what* it computes: the
maintained solutions, the per-update round counts and the word accounting
must be identical under every backend.  These tests drive the same graphs
and update streams through the reference, fast, sharded, parallel, process
and resident backends — the latter twice: once with its default slot
count and once pinned to two slots (``resident-shm``), where cross-slot
messages ride the shared-memory rings — and compare everything the
algorithms expose.

The sharded/parallel/process/resident configurations deliberately use a
``shard_count`` that does **not** divide the machine counts these workloads
produce, so the uneven last shard and the K-way merge barrier are always
exercised; the parallel backend runs with a real two-worker thread pool,
the process backend with a real two-worker spawn pool and the resident
backend with live persistent worker sessions (the static tests assert the
superstep jobs genuinely crossed the process boundary and, for resident,
that one session was reused across rounds).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DMPCConfig
from repro.dynamic_mpc import (
    DMPCApproxMST,
    DMPCConnectivity,
    DMPCMaximalMatching,
    DMPCThreeHalvesMatching,
    DMPCTwoPlusEpsMatching,
)
from repro.graph import DynamicGraph, GraphUpdate, batched
from repro.graph.generators import gnm_random_graph, random_weighted_graph
from repro.graph.streams import mixed_stream
from repro.static_mpc import StaticBoruvkaMST, StaticConnectedComponents, StaticMaximalMatching

#: the seventh way, ``resident-shm``, is the resident backend pinned to two
#: worker slots — the configuration where cross-slot messages genuinely ride
#: the shared-memory rings (one slot routes everything worker-locally).
BACKENDS = ("reference", "fast", "sharded", "parallel", "process", "resident", "resident-shm")

#: deliberately odd so it does not divide typical machine counts
SHARD_COUNT = 3
MAX_WORKERS = 2

_RESIDENT_FAMILY = ("resident", "resident-shm")


def real_backend(backend: str) -> str:
    """Registry name behind a test-matrix entry (``resident-shm`` is a config)."""
    return "resident" if backend == "resident-shm" else backend


def backend_overrides(backend: str) -> dict:
    """Per-backend config extras: odd shard count, real worker pools."""
    extra: dict = {}
    if backend in ("sharded", "parallel", "process", *_RESIDENT_FAMILY):
        extra["shard_count"] = SHARD_COUNT
    if backend in ("parallel", "process", *_RESIDENT_FAMILY):
        extra["max_workers"] = MAX_WORKERS
    if backend == "resident-shm":
        extra["resident_slots"] = 2
    return extra


def make_config(n: int, m: int, backend: str) -> DMPCConfig:
    return DMPCConfig.for_graph(n, m, backend=real_backend(backend), **backend_overrides(backend))


def per_update_rounds(algorithm) -> list[tuple[str, int]]:
    """(label, round count) of every recorded ledger update, in order."""
    return [(u.label, u.num_rounds) for u in algorithm.ledger.updates]


def run_stream(cls, config: DMPCConfig, graph, stream, *, batch_size: int | None = None, **kwargs):
    algorithm = cls(config, **kwargs)
    algorithm.preprocess(graph.copy() if graph is not None else DynamicGraph())
    if batch_size is None:
        for update in stream:
            algorithm.apply(update)
    else:
        for chunk in batched(stream, batch_size):
            algorithm.apply_batch(chunk)
    return algorithm


def run_all(cls, make_config, graph, stream, *, batch_size: int | None = None, **kwargs):
    return {
        backend: run_stream(cls, make_config(backend), graph, stream, batch_size=batch_size, **kwargs)
        for backend in BACKENDS
    }


def assert_all_equal(by_backend: dict, extract, what: str) -> None:
    reference = extract(by_backend["reference"])
    for backend in BACKENDS[1:]:
        assert extract(by_backend[backend]) == reference, f"{backend} diverged from reference: {what}"


class TestAlgorithmEquivalence:
    @pytest.mark.parametrize("batch_size", [None, 8])
    def test_connectivity_same_solution_and_rounds(self, batch_size):
        n, m = 48, 96
        graph = gnm_random_graph(n, m, seed=21)
        stream = list(mixed_stream(n, 120, seed=22, insert_probability=0.5, initial=graph))
        runs = run_all(
            DMPCConnectivity, lambda b: make_config(n, 2 * m, b), graph, stream, batch_size=batch_size
        )
        assert_all_equal(runs, lambda a: sorted(map(sorted, a.components())), "components")
        assert_all_equal(runs, lambda a: a.spanning_forest(), "spanning forest")
        assert_all_equal(runs, per_update_rounds, "per-update rounds")
        assert_all_equal(runs, lambda a: a.update_summary().as_dict(), "update summary")

    @pytest.mark.parametrize("batch_size", [None, 8])
    def test_maximal_matching_same_solution_and_rounds(self, batch_size):
        n, m = 40, 80
        graph = gnm_random_graph(n, m, seed=31)
        stream = list(mixed_stream(n, 120, seed=32, insert_probability=0.5, initial=graph))
        runs = run_all(
            DMPCMaximalMatching, lambda b: make_config(n, 2 * m, b), graph, stream, batch_size=batch_size
        )
        assert_all_equal(runs, lambda a: a.matching(), "matching")
        assert_all_equal(runs, per_update_rounds, "per-update rounds")
        assert_all_equal(runs, lambda a: a.update_summary().as_dict(), "update summary")

    def test_approx_mst_same_forest_and_rounds(self):
        n, m = 32, 64
        graph = random_weighted_graph(n, m, seed=41)
        stream = list(mixed_stream(n, 80, seed=42, insert_probability=0.5, initial=graph, weighted=True))
        runs = run_all(DMPCApproxMST, lambda b: make_config(n, 2 * m, b), graph, stream, epsilon=0.2)
        assert_all_equal(runs, lambda a: a.spanning_forest(), "spanning forest")
        assert_all_equal(runs, per_update_rounds, "per-update rounds")
        reference = runs["reference"].forest_weight()
        for backend in BACKENDS[1:]:
            assert runs[backend].forest_weight() == pytest.approx(reference)

    def test_heavy_star_workload_equivalent(self):
        """The heavy-vertex suspended-stack path decides identically on all backends."""
        n = 64
        graph = DynamicGraph(n)
        for i in range(1, 31):
            graph.insert_edge(0, i)
        stream = [GraphUpdate.delete(0, i) for i in range(1, 23)]
        runs = run_all(DMPCMaximalMatching, lambda b: make_config(n, 2 * graph.num_edges, b), graph, stream)
        assert_all_equal(runs, lambda a: a.matching(), "matching")
        assert_all_equal(runs, per_update_rounds, "per-update rounds")

    @pytest.mark.parametrize(
        "algorithm_cls,kwargs",
        [
            (DMPCConnectivity, {}),
            (DMPCMaximalMatching, {}),
            (DMPCThreeHalvesMatching, {}),
            (DMPCTwoPlusEpsMatching, {"seed": 3}),
        ],
        ids=lambda value: getattr(value, "__name__", ""),
    )
    def test_memory_accounting_identical(self, algorithm_cls, kwargs):
        """Every backend must report the exact same memory usage as eager sizing.

        This covers every in-place-mutation pattern the algorithms use
        (``mutate_stats`` / ``push_stats`` same-object re-stores, the
        two-plus-eps per-vertex state dicts, copy-on-write adjacency) —
        the reference never charges in-place drift and the cached storage
        must not either.
        """
        n = 40
        stream = list(mixed_stream(n, 100, seed=52, insert_probability=0.55))
        runs = run_all(algorithm_cls, lambda b: make_config(n, 4 * n, b), DynamicGraph(n), stream, **kwargs)
        reference = runs["reference"]
        for backend in BACKENDS[1:]:
            other = runs[backend]
            assert other.cluster.total_stored_words == reference.cluster.total_stored_words
            for ref_machine, other_machine in zip(reference.cluster.machines(), other.cluster.machines()):
                assert ref_machine.machine_id == other_machine.machine_id
                assert ref_machine.used_words == other_machine.used_words


class TestStaticAlgorithmEquivalence:
    """The superstep-routed static baselines under every execution strategy.

    These are the workloads where the parallel backend actually fans
    handler execution across the worker pool, so they pin the deterministic
    merge barrier: solutions, per-round ledger records, word totals and
    per-machine ``used_words`` must be identical to the reference.
    """

    def run_static(self, cls, graph, *, expect_shm=True, **kwargs):
        runs = {}
        for backend in BACKENDS:
            algorithm = cls(
                graph, backend=real_backend(backend), **backend_overrides(backend), **kwargs
            )
            algorithm.run()
            runs[backend] = algorithm
        # The process rows must have genuinely crossed the process boundary —
        # a silent fallback would make this whole class vacuous for it.
        assert runs["process"].cluster.backend.last_superstep_mode == "pool"
        # Likewise the resident rows: the run's supersteps must have been
        # routed through one live worker session, with more than one round
        # actually crossing into the persistent workers (state was kept
        # resident and *reused*, not re-shipped per round).
        for backend in _RESIDENT_FAMILY:
            resident_backend = runs[backend].cluster.backend
            assert resident_backend.last_superstep_mode in (
                "resident",
                "resident-routed",
                "resident-inline",
                "resident-fused",
            )
            assert resident_backend.last_session_worker_rounds >= 2
        # The shm row must be non-vacuous: with two slots on these
        # message-heavy workloads at least one cross-slot frame must have
        # ridden a shared-memory ring (otherwise the equivalence claim for
        # the shm wire path tests nothing).  Workloads whose only superstep
        # program is driver-read get adaptively funneled after their first
        # routed round (``expect_shm=False``); for those the weaker claim
        # holds — slot routing ran at least once.
        traffic = runs["resident-shm"].cluster.backend.last_session_traffic
        if expect_shm:
            assert runs["resident-shm"].cluster.backend.last_session_shm_frames >= 1
        assert traffic["local_messages"] + traffic["cross_slot_messages"] >= 1
        return runs

    def assert_cluster_parity(self, runs):
        reference = runs["reference"]
        ref_rounds = [(u.label, u.num_rounds, u.total_words) for u in reference.cluster.ledger.updates]
        ref_words = [(m.machine_id, m.used_words) for m in reference.cluster.machines()]
        for backend in BACKENDS[1:]:
            other = runs[backend]
            assert [(u.label, u.num_rounds, u.total_words) for u in other.cluster.ledger.updates] == ref_rounds
            assert [(m.machine_id, m.used_words) for m in other.cluster.machines()] == ref_words
            summary = other.cluster.ledger.summary().as_dict()
            assert summary == reference.cluster.ledger.summary().as_dict()

    def test_connected_components_equivalent(self):
        graph = gnm_random_graph(60, 140, seed=13)
        runs = self.run_static(StaticConnectedComponents, graph)
        assert_all_equal(runs, lambda a: a.labels, "labels")
        assert_all_equal(runs, lambda a: sorted(a.spanning_forest()), "spanning forest")
        assert_all_equal(runs, lambda a: a.rounds_used, "rounds used")
        self.assert_cluster_parity(runs)

    def test_maximal_matching_equivalent(self):
        graph = gnm_random_graph(50, 130, seed=17)
        runs = self.run_static(StaticMaximalMatching, graph, seed=17)
        assert_all_equal(runs, lambda a: sorted(a.matching), "matching")
        assert_all_equal(runs, lambda a: a.rounds_used, "rounds used")
        self.assert_cluster_parity(runs)

    def test_boruvka_mst_equivalent(self):
        graph = random_weighted_graph(45, 110, seed=19)
        # Borůvka's single superstep program feeds the driver-local
        # contraction step, so its sends funnel after round 1 — no shm
        # frames expected, but routing itself must still have engaged.
        runs = self.run_static(StaticBoruvkaMST, graph, expect_shm=False)
        assert_all_equal(runs, lambda a: sorted(a.forest), "forest")
        assert_all_equal(runs, lambda a: a.phases_used, "phases used")
        reference = runs["reference"].forest_weight()
        for backend in BACKENDS[1:]:
            assert runs[backend].forest_weight() == pytest.approx(reference)
        self.assert_cluster_parity(runs)


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=1, max_size=25))
def test_property_equivalence_under_arbitrary_toggles(pairs):
    """Property: any toggle sequence yields identical matchings and round counts."""
    algorithms = {}
    for backend in BACKENDS:
        alg = DMPCMaximalMatching(make_config(10, 64, backend))
        alg.preprocess(DynamicGraph(10))
        present: set[tuple[int, int]] = set()
        for (u, v) in pairs:
            if u == v:
                continue
            edge = (min(u, v), max(u, v))
            if edge in present:
                alg.apply(GraphUpdate.delete(*edge))
                present.discard(edge)
            else:
                alg.apply(GraphUpdate.insert(*edge))
                present.add(edge)
        algorithms[backend] = alg
    assert_all_equal(algorithms, lambda a: a.matching(), "matching")
    assert_all_equal(algorithms, per_update_rounds, "per-update rounds")
    assert_all_equal(algorithms, lambda a: a.cluster.total_stored_words, "stored words")
