"""Cross-backend equivalence: the fast backend must change nothing observable.

The execution-backend contract (:mod:`repro.runtime.base`) is that backends
may change *how* a simulation executes but never *what* it computes: the
maintained solutions, the per-update round counts and the word accounting
must be identical under every backend.  These tests drive the same graphs
and update streams through the reference and fast backends and compare
everything the algorithms expose.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DMPCConfig
from repro.dynamic_mpc import (
    DMPCApproxMST,
    DMPCConnectivity,
    DMPCMaximalMatching,
    DMPCThreeHalvesMatching,
    DMPCTwoPlusEpsMatching,
)
from repro.graph import DynamicGraph, GraphUpdate, batched
from repro.graph.generators import gnm_random_graph, random_weighted_graph
from repro.graph.streams import mixed_stream

BACKENDS = ("reference", "fast")


def per_update_rounds(algorithm) -> list[tuple[str, int]]:
    """(label, round count) of every recorded ledger update, in order."""
    return [(u.label, u.num_rounds) for u in algorithm.ledger.updates]


def run_stream(cls, config: DMPCConfig, graph, stream, *, batch_size: int | None = None, **kwargs):
    algorithm = cls(config, **kwargs)
    algorithm.preprocess(graph.copy() if graph is not None else DynamicGraph())
    if batch_size is None:
        for update in stream:
            algorithm.apply(update)
    else:
        for chunk in batched(stream, batch_size):
            algorithm.apply_batch(chunk)
    return algorithm


def run_both(cls, make_config, graph, stream, *, batch_size: int | None = None, **kwargs):
    return {
        backend: run_stream(cls, make_config(backend), graph, stream, batch_size=batch_size, **kwargs)
        for backend in BACKENDS
    }


class TestAlgorithmEquivalence:
    @pytest.mark.parametrize("batch_size", [None, 8])
    def test_connectivity_same_solution_and_rounds(self, batch_size):
        n, m = 48, 96
        graph = gnm_random_graph(n, m, seed=21)
        stream = list(mixed_stream(n, 120, seed=22, insert_probability=0.5, initial=graph))
        runs = run_both(
            DMPCConnectivity, lambda b: DMPCConfig.for_graph(n, 2 * m, backend=b), graph, stream, batch_size=batch_size
        )
        ref, fast = runs["reference"], runs["fast"]
        assert sorted(map(sorted, ref.components())) == sorted(map(sorted, fast.components()))
        assert ref.spanning_forest() == fast.spanning_forest()
        assert per_update_rounds(ref) == per_update_rounds(fast)
        assert ref.update_summary().as_dict() == fast.update_summary().as_dict()

    @pytest.mark.parametrize("batch_size", [None, 8])
    def test_maximal_matching_same_solution_and_rounds(self, batch_size):
        n, m = 40, 80
        graph = gnm_random_graph(n, m, seed=31)
        stream = list(mixed_stream(n, 120, seed=32, insert_probability=0.5, initial=graph))
        runs = run_both(
            DMPCMaximalMatching, lambda b: DMPCConfig.for_graph(n, 2 * m, backend=b), graph, stream, batch_size=batch_size
        )
        ref, fast = runs["reference"], runs["fast"]
        assert ref.matching() == fast.matching()
        assert per_update_rounds(ref) == per_update_rounds(fast)
        assert ref.update_summary().as_dict() == fast.update_summary().as_dict()

    def test_approx_mst_same_forest_and_rounds(self):
        n, m = 32, 64
        graph = random_weighted_graph(n, m, seed=41)
        stream = list(mixed_stream(n, 80, seed=42, insert_probability=0.5, initial=graph, weighted=True))
        runs = run_both(
            DMPCApproxMST, lambda b: DMPCConfig.for_graph(n, 2 * m, backend=b), graph, stream, epsilon=0.2
        )
        ref, fast = runs["reference"], runs["fast"]
        assert ref.spanning_forest() == fast.spanning_forest()
        assert ref.forest_weight() == pytest.approx(fast.forest_weight())
        assert per_update_rounds(ref) == per_update_rounds(fast)

    def test_heavy_star_workload_equivalent(self):
        """The heavy-vertex suspended-stack path decides identically on both backends."""
        n = 64
        graph = DynamicGraph(n)
        for i in range(1, 31):
            graph.insert_edge(0, i)
        stream = [GraphUpdate.delete(0, i) for i in range(1, 23)]
        runs = run_both(
            DMPCMaximalMatching, lambda b: DMPCConfig.for_graph(n, 2 * graph.num_edges, backend=b), graph, stream
        )
        assert runs["reference"].matching() == runs["fast"].matching()
        assert per_update_rounds(runs["reference"]) == per_update_rounds(runs["fast"])

    @pytest.mark.parametrize(
        "algorithm_cls,kwargs",
        [
            (DMPCConnectivity, {}),
            (DMPCMaximalMatching, {}),
            (DMPCThreeHalvesMatching, {}),
            (DMPCTwoPlusEpsMatching, {"seed": 3}),
        ],
        ids=lambda value: getattr(value, "__name__", ""),
    )
    def test_memory_accounting_identical(self, algorithm_cls, kwargs):
        """Cached sizing must report the exact same memory usage as eager sizing.

        This covers every in-place-mutation pattern the algorithms use
        (``mutate_stats`` / ``push_stats`` same-object re-stores, the
        two-plus-eps per-vertex state dicts, copy-on-write adjacency) —
        the reference never charges in-place drift and the cached storage
        must not either.
        """
        n = 40
        stream = list(mixed_stream(n, 100, seed=52, insert_probability=0.55))
        runs = run_both(
            algorithm_cls, lambda b: DMPCConfig.for_graph(n, 4 * n, backend=b), DynamicGraph(n), stream, **kwargs
        )
        ref, fast = runs["reference"], runs["fast"]
        assert ref.cluster.total_stored_words == fast.cluster.total_stored_words
        for ref_machine, fast_machine in zip(ref.cluster.machines(), fast.cluster.machines()):
            assert ref_machine.machine_id == fast_machine.machine_id
            assert ref_machine.used_words == fast_machine.used_words


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=1, max_size=25))
def test_property_equivalence_under_arbitrary_toggles(pairs):
    """Property: any toggle sequence yields identical matchings and round counts."""
    algorithms = {}
    for backend in BACKENDS:
        alg = DMPCMaximalMatching(DMPCConfig.for_graph(10, 64, backend=backend))
        alg.preprocess(DynamicGraph(10))
        present: set[tuple[int, int]] = set()
        for (u, v) in pairs:
            if u == v:
                continue
            edge = (min(u, v), max(u, v))
            if edge in present:
                alg.apply(GraphUpdate.delete(*edge))
                present.discard(edge)
            else:
                alg.apply(GraphUpdate.insert(*edge))
                present.add(edge)
        algorithms[backend] = alg
    ref, fast = algorithms["reference"], algorithms["fast"]
    assert ref.matching() == fast.matching()
    assert per_update_rounds(ref) == per_update_rounds(fast)
    assert ref.cluster.total_stored_words == fast.cluster.total_stored_words
