"""The resident backend's session, delta-shipping and live re-plan seams.

Cross-backend *equivalence* of the resident backend is pinned in
``test_backend_equivalence`` (six-backend matrix, non-vacuous residency
assertions).  This module covers what is specific to residency itself:

* live re-planning — :meth:`Cluster.replan` mid-run (including shard-count
  changes under the rendezvous strategy) must preserve bit-identical
  solutions and round counts versus a fixed-plan run, and migration must
  move only machines the ``rebalance`` proposal actually pinned elsewhere;
* the closed autotuning loop (``DMPCConfig.replan_every``);
* the worker-session protocol ops, exercised in-process (they are plain
  functions over a sessions dict) and against the real worker processes;
* snapshot-cache eviction by storage-version epoch, in both the process
  backend's worker cache and resident session state.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DMPCConfig
from repro.exceptions import ProtocolError
from repro.graph.generators import gnm_random_graph
from repro.mpc.cluster import Cluster
from repro.runtime.process import _WORKER_STORES, _worker_store
from repro.runtime.resident import (
    ResidentBackend,
    ResidentSession,
    _session_close,
    _session_migrate,
    _session_open,
    _session_run_round,
    _slot_worker,
)
from repro.runtime.sharding import ShardPlan
from repro.static_mpc import StaticConnectedComponents
from repro.static_mpc.common import build_static_cluster
from repro.static_mpc.connected_components import LabelApplyProgram, LabelProposeProgram

SHARD_COUNT = 3
MAX_WORKERS = 2


def run_label_propagation(graph, *, backend, plans=None, replan_every=None, on_round=None):
    """The StaticConnectedComponents round loop, with re-plan injection.

    ``plans`` maps an iteration number to a callable ``cluster -> ShardPlan``
    applied (via :meth:`Cluster.replan`) right before that iteration's
    supersteps; ``on_round`` maps an iteration number to a callable
    ``(cluster, session) -> None`` run at the same point (fault injection).
    Returns everything a bit-identity comparison needs plus the session and
    the observed migrations.
    """
    # The hand-built round loop below uses the dict-layout programs, so pin
    # the layout regardless of the REPRO_STATIC_LAYOUT default.
    setup = build_static_cluster(
        graph,
        backend=backend,
        shard_count=SHARD_COUNT,
        max_workers=MAX_WORKERS,
        replan_every=replan_every,
        layout="dict",
    )
    cluster = setup.cluster
    worker_ids = setup.worker_ids
    leader = worker_ids[0]
    state = {"labels": {v: v for v in graph.vertices}, "via": {}, "changed_flags": {}}
    propose = LabelProposeProgram(setup.owned, worker_ids)
    apply_min = LabelApplyProgram(setup.owned, worker_ids, leader)
    migrations = []
    with cluster.update("replan-cc"), cluster.session(state) as session:
        changed = True
        rounds = 0
        while changed and rounds < 4 * max(4, graph.num_vertices):
            rounds += 1
            if on_round and rounds in on_round:
                on_round[rounds](cluster, session)
            if plans and rounds in plans:
                plan = plans[rounds](cluster)
                applied = cluster.replan(plan)
                migrations.append((rounds, plan, applied, list(session.last_migration or [])))
            cluster.superstep(propose, machines=worker_ids, shared=state)
            cluster.superstep(apply_min, machines=worker_ids, shared=state)
            changed = any(state["changed_flags"].values())
        cluster.machine(leader).drain("changed")
    return {
        "labels": state["labels"],
        "via": dict(state["via"]),
        "rounds": rounds,
        "ledger": [(u.label, u.num_rounds, u.total_words) for u in cluster.ledger.updates],
        "cluster": cluster,
        "session": session,
        "migrations": migrations,
    }


def assert_identical_runs(result, reference):
    assert result["labels"] == reference["labels"]
    assert result["via"] == reference["via"]
    assert result["rounds"] == reference["rounds"]
    assert result["ledger"] == reference["ledger"]


class TestLiveReplan:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000), gap=st.integers(1, 3), second_count=st.integers(1, 6))
    def test_replan_mid_run_is_bit_identical(self, seed, gap, second_count):
        """Property: arbitrary mid-run plan changes — including shard-count
        changes under the rendezvous strategy — never change the simulation."""
        graph = gnm_random_graph(36, 80, seed=seed)
        reference = run_label_propagation(graph, backend="fast")
        # round 2 always exists (any improving round forces a follow-up),
        # so the first re-plan always lands mid-run; the second may fall
        # past convergence depending on the graph.
        plans = {
            2: lambda cluster: ShardPlan(5, strategy="rendezvous"),
            2 + gap: lambda cluster: ShardPlan(second_count, strategy="rendezvous"),
        }
        result = run_label_propagation(graph, backend="resident", plans=plans)
        assert_identical_runs(result, reference)
        # plans scheduled past convergence never fire; every fired one applied
        fired = [round_no for round_no in sorted(plans) if round_no <= result["rounds"]]
        assert fired, "at least the first re-plan must land mid-run"
        applied = [entry for entry in result["migrations"] if entry[2]]
        assert len(applied) == len(fired)
        history = result["cluster"].replan_history
        assert [h["shard_count"] for h in history] == [5, second_count][: len(fired)]
        assert all(h["strategy"] == "rendezvous" for h in history)

    def test_rebalance_migration_moves_only_pinned_machines(self):
        """A live ``machine_load -> rebalance -> replan`` step migrates only
        machines the proposal pinned (to a different worker slot) — and the
        run still matches a fixed-plan one bit for bit."""
        graph = gnm_random_graph(48, 110, seed=7)
        reference = run_label_propagation(graph, backend="fast")

        observed = {}

        def rebalance_from_load(cluster):
            proposal = cluster.backend.plan.rebalance(cluster._transport.machine_load())
            observed["proposal"] = proposal
            return proposal

        result = run_label_propagation(graph, backend="resident", plans={3: rebalance_from_load})
        assert_identical_runs(result, reference)
        (_, plan, applied, moved) = result["migrations"][0]
        assert applied
        session = result["session"]
        assert isinstance(session, ResidentSession)
        # every machine that sent anything is pinned by the LPT proposal...
        assert plan.assignment
        # ...and migration touched no machine the proposal did not pin.
        assert set(moved) <= set(plan.assignment)
        assert session.last_migration == moved

    def test_autotune_loop_closes_and_records_plans(self):
        graph = gnm_random_graph(40, 90, seed=11)
        fixed = StaticConnectedComponents(graph, shard_count=SHARD_COUNT, backend="fast")
        fixed.run()
        tuned = StaticConnectedComponents(
            graph,
            backend="resident",
            shard_count=SHARD_COUNT,
            max_workers=MAX_WORKERS,
            replan_every=4,
        )
        tuned.run()
        assert tuned.labels == fixed.labels
        assert tuned.rounds_used == fixed.rounds_used
        assert sorted(tuned.spanning_forest()) == sorted(fixed.spanning_forest())
        history = tuned.cluster.replan_history
        assert history, "replan_every must have driven at least one adopted plan"
        for entry in history:
            assert set(entry) == {"round", "shard_count", "strategy", "pinned"}
            assert entry["pinned"], "LPT proposals pin every machine that sent words"

    def test_replan_with_storeless_programs_multi_slot(self, monkeypatch):
        """Matching programs ship no stores, so machine→slot moves are
        invisible to the snapshot bookkeeping — a re-plan must still
        invalidate resident shared copies (stale owner-scoped free_adj at a
        machine's new slot would silently diverge the matching).  Forced to
        two slots so this holds on single-CPU hosts too."""
        monkeypatch.setattr(ResidentBackend, "worker_slots", property(lambda self: 2))
        from repro.static_mpc import StaticMaximalMatching

        graph = gnm_random_graph(48, 130, seed=31)
        fixed = StaticMaximalMatching(graph, seed=31, backend="fast")
        fixed.run()
        tuned = StaticMaximalMatching(
            graph,
            seed=31,
            backend="resident",
            shard_count=SHARD_COUNT,
            max_workers=MAX_WORKERS,
            replan_every=2,
        )
        tuned.run()
        assert sorted(tuned.matching) == sorted(fixed.matching)
        assert tuned.rounds_used == fixed.rounds_used
        assert tuned.cluster.replan_history, "replan_every=2 must fire within the run"
        assert tuned.cluster.backend.last_session_worker_rounds >= 2

    def test_replan_is_noop_on_unplanned_backends(self):
        config = DMPCConfig.for_graph(16, 32, backend="fast")
        cluster = Cluster(config)
        cluster.add_machines("w", 4)
        assert cluster.replan(ShardPlan(4)) is False
        assert cluster.replan_history == []
        assert cluster.autotune_replan() is None

    def test_replan_with_staged_messages_raises(self):
        config = DMPCConfig.for_graph(16, 32, backend="sharded", shard_count=2)
        cluster = Cluster(config)
        machines = cluster.add_machines("w", 4)
        machines[0].send("w1", "probe", 1)
        with pytest.raises(ProtocolError):
            cluster.replan(ShardPlan(3))
        cluster.exchange()
        assert cluster.replan(ShardPlan(3)) is True
        assert cluster.replan_history[0]["shard_count"] == 3

    def test_sessions_do_not_nest(self):
        config = DMPCConfig.for_graph(16, 32, backend="fast")
        cluster = Cluster(config)
        with cluster.session({}):
            with pytest.raises(ProtocolError):
                with cluster.session({}):
                    pass  # pragma: no cover


class TestWorkerSessionProtocol:
    """The four protocol ops as plain functions over a sessions dict."""

    def make_program_blob(self):
        program = LabelProposeProgram({"m0": []}, ["m0"])
        return pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)

    def test_open_run_close_lifecycle(self):
        sessions = {}
        assert _session_open(sessions, "s1")
        assert _session_open(sessions, "s1")  # idempotent
        blob = self.make_program_blob()
        results = _session_run_round(
            sessions, "s1", {0: blob}, 0, [], {"labels": {}}, [], [("m0", ())]
        )
        assert results == [("m0", [], None)]
        assert _session_close(sessions, "s1")
        assert sessions == {}
        assert not _session_close(sessions, "s1")

    def test_store_version_epoch_evicts_superseded_snapshots(self):
        sessions = {}
        _session_open(sessions, "s")
        blob = self.make_program_blob()
        store_v1 = pickle.dumps({("adj", 1): [2]}, protocol=pickle.HIGHEST_PROTOCOL)
        _session_run_round(
            sessions, "s", {0: blob}, 0, [], {"labels": {}},
            [("m0", ("adj",), 1, store_v1)], [("m0", ())],
        )
        state = sessions["s"]
        assert state.stores[("m0", ("adj",))] == {("adj", 1): [2]}
        assert state.store_versions["m0"] == 1
        # a newer epoch evicts every prefix snapshot of the machine at once
        store_v2 = pickle.dumps({("weights", 1): {2: 1.0}}, protocol=pickle.HIGHEST_PROTOCOL)
        _session_run_round(
            sessions, "s", {}, 0, [], {},
            [("m0", ("weights",), 2, store_v2)], [("m0", ())],
        )
        assert ("m0", ("adj",)) not in state.stores
        assert state.stores[("m0", ("weights",))] == {("weights", 1): {2: 1.0}}
        assert state.store_versions["m0"] == 2

    def test_migrate_drops_only_named_machines(self):
        sessions = {}
        _session_open(sessions, "s")
        state = sessions["s"]
        state.stores[("m0", ("adj",))] = {"a": 1}
        state.stores[("m0", ("weights",))] = {"b": 2}
        state.stores[("m1", ("adj",))] = {"c": 3}
        state.store_versions.update({"m0": 4, "m1": 9})
        assert _session_migrate(sessions, "s", ["m0"]) == 2
        assert list(state.stores) == [("m1", ("adj",))]
        assert state.store_versions == {"m1": 9}
        assert _session_migrate(sessions, "missing", ["m0"]) == 0

    def test_worker_death_mid_session_recovers(self):
        """Killing every slot worker mid-session must not corrupt the run:
        respawned workers carry a new generation, so the session resets its
        per-slot bookkeeping and re-ships state wholesale."""
        graph = gnm_random_graph(40, 90, seed=23)
        reference = run_label_propagation(graph, backend="fast")

        def kill_workers(cluster, session):
            for slot in range(session.slot_count):
                worker = _slot_worker(slot)
                worker.process.terminate()
                worker.process.join(timeout=10)

        result = run_label_propagation(graph, backend="resident", on_round={3: kill_workers})
        assert_identical_runs(result, reference)
        assert result["session"].worker_rounds >= 2

    def test_aborted_round_leaves_shared_workers_usable(self):
        """A round that dies while building/pipelining requests must realign
        the (process-wide) slot workers' pipes: the broken session falls back,
        and a *fresh* session on the same workers still runs bit-identically."""
        graph = gnm_random_graph(30, 60, seed=29)
        setup = build_static_cluster(
            graph, backend="resident", shard_count=SHARD_COUNT, max_workers=MAX_WORKERS, layout="dict"
        )
        cluster = setup.cluster
        worker_ids = setup.worker_ids
        propose = LabelProposeProgram(setup.owned, worker_ids)
        bad_state = {"via": {}, "changed_flags": {}}  # missing "labels"
        with cluster.session(bad_state) as session:
            with pytest.raises(KeyError):
                cluster.superstep(propose, machines=worker_ids, shared=bad_state)
            assert session._broken
        reference = run_label_propagation(graph, backend="fast")
        result = run_label_propagation(graph, backend="resident")
        assert_identical_runs(result, reference)
        assert result["session"].worker_rounds >= 2

    def test_closed_session_leaves_no_worker_state(self):
        """Drive a real run, then ask the live worker processes directly."""
        graph = gnm_random_graph(30, 60, seed=3)
        result = run_label_propagation(graph, backend="resident")
        session = result["session"]
        assert isinstance(session, ResidentSession)
        assert session.worker_rounds >= 2
        for slot in range(session.slot_count):
            assert session.session_id not in _slot_worker(slot).call(("sessions",))


class TestProcessWorkerStoreCache:
    def test_superseded_versions_are_evicted(self):
        _WORKER_STORES.clear()
        adj_blob = pickle.dumps({("adj", 1): [2]})
        weights_blob = pickle.dumps({("weights", 1): {2: 1.0}})
        assert _worker_store("m0", ("adj",), 1, adj_blob) == {("adj", 1): [2]}
        assert _worker_store("m0", ("weights",), 1, weights_blob) == {("weights", 1): {2: 1.0}}
        version, by_prefix = _WORKER_STORES["m0"]
        assert version == 1 and set(by_prefix) == {("adj",), ("weights",)}
        # the version epoch moves: every old prefix snapshot goes at once,
        # so long update streams keep exactly one version per machine
        new_adj = pickle.dumps({("adj", 1): [2, 3]})
        assert _worker_store("m0", ("adj",), 2, new_adj) == {("adj", 1): [2, 3]}
        version, by_prefix = _WORKER_STORES["m0"]
        assert version == 2 and set(by_prefix) == {("adj",)}
        _WORKER_STORES.clear()

    def test_unchanged_blob_skips_unpickling(self):
        _WORKER_STORES.clear()
        blob = pickle.dumps({("adj", 7): [1]})
        first = _worker_store("m1", ("adj",), 3, blob)
        assert _worker_store("m1", ("adj",), 3, blob) is first
        _WORKER_STORES.clear()
