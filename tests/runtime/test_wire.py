"""Wire codec round-trips for the flat layout types.

The slot-routing suite covers the ring mechanics (wrap, backlog, torn
headers on raw frames); this file pins the *codec* contract the CSR recut
leans on: registered layout types (:class:`~repro.mpc.layout.MachineCSR`,
:class:`~repro.mpc.layout.AliveTable`) and naked buffers must survive
:func:`encode_obj`/:func:`decode_obj` bit-for-bit via the buffer-lifted
marshal path — never the silent marshal corruption of naked buffers, and
falling back to pickle only for genuinely unliftable frames — including
when the frames ride a shared-memory ring.
"""

from __future__ import annotations

from array import array

import pytest

from repro.mpc.layout import AliveTable, MachineCSR, build_machine_csr
from repro.runtime.wire import ShmRing, TornFrameError, decode_obj, encode_obj

WORKERS = ["w0", "w1", "w2"]


def sample_csr(weighted: bool = True) -> MachineCSR:
    adjacency = {4: [1, 7, 9], 7: [4], 9: [4, 12]}
    weight = (lambda v, w: float(v + w) / 2) if weighted else None
    return build_machine_csr(sorted(adjacency), lambda v: adjacency[v], weight, WORKERS)


class TestBufferLifting:
    def test_marshal_path_for_plain_frames(self):
        frame = (1, "round", [2, 3], {"a": (4, 5)})
        blob = encode_obj(frame)
        assert blob[:1] == b"M"
        assert decode_obj(blob) == frame

    @pytest.mark.parametrize(
        "buf",
        [bytearray(b"\x01\x00\x01"), array("q", [3, 1, 4]), array("d", [0.5, 2.25])],
        ids=["bytearray", "array-q", "array-d"],
    )
    def test_buffers_on_the_lifted_path_survive_with_exact_type(self, buf):
        # Pair the buffer with a registered type: marshal loudly rejects the
        # class instance, forcing the lifted path that rewrites *both* into
        # sentinels.  (A buffers-only frame would marshal directly — the
        # silent bytes-corruption documented in ``repro.runtime.wire`` —
        # which is exactly why every layout value is class-wrapped.)
        frame = {"key": buf, "alive": AliveTable(), "rest": [1, 2]}
        blob = encode_obj(frame)
        assert blob[:1] == b"A"
        back = decode_obj(blob)["key"]
        assert type(back) is type(buf)
        assert back == buf

    def test_wire_marker_collision_is_escaped(self):
        frame = ("__wire__", "bya", b"not a buffer")
        blob = encode_obj(frame)
        assert decode_obj(blob) == frame

    def test_unliftable_frame_falls_back_to_pickle(self):
        frame = {"exc": ValueError("shipped failure"), "round": 3}
        blob = encode_obj(frame)
        assert blob[:1] == b"P"
        back = decode_obj(blob)
        assert back["round"] == 3
        assert isinstance(back["exc"], ValueError)
        assert back["exc"].args == ("shipped failure",)


class TestLayoutTypeRoundTrips:
    @pytest.mark.parametrize("weighted", [True, False], ids=["weighted", "unweighted"])
    def test_machine_csr_round_trip(self, weighted):
        csr = sample_csr(weighted)
        blob = encode_obj({"store": {"csr": csr}})
        assert blob[:1] == b"A"
        back = decode_obj(blob)["store"]["csr"]
        assert type(back) is MachineCSR
        assert back == csr
        assert back.dmpc_words() == csr.dmpc_words()
        # materialized ownership survives too — kernels index it directly
        assert list(back.owner_pos) == list(csr.owner_pos)
        assert [(pos, list(sel)) for pos, sel in back.groups] == [
            (pos, list(sel)) for pos, sel in csr.groups
        ]

    def test_alive_table_round_trip(self):
        table = AliveTable({"w0": bytearray(b"\x01\x01\x00"), "w1": bytearray()})
        back = decode_obj(encode_obj([("edge_alive", table)]))[0][1]
        assert type(back) is AliveTable
        assert back == table
        assert all(type(row) is bytearray for row in back.rows.values())

    def test_csr_frame_rides_a_ring(self):
        ring = ShmRing(bytearray(16 + 4096))
        frame = {"csr": sample_csr(), "alive": AliveTable({"w0": bytearray(b"\x01")})}
        assert ring.write(encode_obj(frame))
        (blob,) = ring.read_all()
        back = decode_obj(blob)
        assert back["csr"] == frame["csr"]
        assert back["alive"] == frame["alive"]

    def test_torn_csr_frame_fails_loudly(self):
        buf = bytearray(16 + 4096)
        ring = ShmRing(buf)
        assert ring.write(encode_obj({"csr": sample_csr()}))
        # clobber the frame header in place — a reader must refuse the
        # frame rather than hand garbage to the codec
        buf[16] ^= 0xFF
        with pytest.raises(TornFrameError):
            ring.read_all()
