"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` keeps working on offline environments without the
``wheel`` package (pip falls back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
