#!/usr/bin/env python3
"""Scenario: maintaining a cheap road/fiber backbone under construction works.

A grid-like road network with travel-time weights evolves: roads close
(deletions), new segments open (insertions), and the operator wants to keep a
minimum-cost spanning backbone at all times.  The Section 5.1 algorithm
maintains a (1+eps)-approximate minimum spanning forest with a constant
number of DMPC rounds per change; the example also cross-checks the result
against the exact sequential dynamic MST run through the Section 7 reduction.

Run with:  python examples/road_network_mst.py
"""

from __future__ import annotations

import random

from repro.config import DMPCConfig
from repro.dynamic_mpc import DMPCApproxMST, SequentialSimulationDMPC
from repro.graph import DynamicGraph
from repro.graph.generators import grid_graph
from repro.graph.streams import mixed_stream
from repro.graph.validation import minimum_spanning_forest_weight
from repro.seq import SequentialDynamicMST


def build_weighted_grid(rows: int, cols: int, seed: int) -> DynamicGraph:
    rng = random.Random(seed)
    grid = grid_graph(rows, cols)
    weighted = DynamicGraph(rows * cols)
    for (u, v) in grid.edges():
        weighted.insert_edge(u, v, rng.uniform(1.0, 30.0))
    return weighted


def main() -> None:
    rows, cols, updates = 8, 10, 160
    epsilon = 0.15
    graph = build_weighted_grid(rows, cols, seed=13)
    n = graph.num_vertices
    print(f"Road network: {rows}x{cols} grid, {graph.num_edges} segments, eps = {epsilon}\n")

    stream = mixed_stream(n, updates, seed=14, insert_probability=0.5, initial=graph, weighted=True)

    approx = DMPCApproxMST(DMPCConfig.for_graph(n, 4 * graph.num_edges), epsilon=epsilon)
    approx.preprocess(graph)

    exact = SequentialSimulationDMPC(
        DMPCConfig.for_graph(n, 4 * graph.num_edges), SequentialDynamicMST(), weighted=True
    )
    exact.preprocess(graph)

    for update in stream:
        approx.apply(update)
        exact.apply(update)

    optimal = minimum_spanning_forest_weight(approx.shadow)
    print(f"Exact minimum backbone cost:        {optimal:10.2f}")
    print(f"Maintained (1+eps) backbone cost:   {approx.forest_weight():10.2f} "
          f"(ratio {approx.forest_weight() / optimal:.4f}, guarantee <= {1 + epsilon})")
    print(f"Reduction-based exact backbone:     {exact.payload.forest_weight():10.2f}\n")

    fast = approx.update_summary()
    slow = exact.update_summary()
    print("Per-update costs (worst case over the stream):")
    print(f"  Section 5.1 (1+eps)-MST : {fast.max_rounds:>4} rounds, {fast.max_active_machines:>4} machines, "
          f"{fast.max_words_per_round:>6} words/round")
    print(f"  Section 7 reduction     : {slow.max_rounds:>4} rounds, {slow.max_active_machines:>4} machines, "
          f"{slow.max_words_per_round:>6} words/round")
    print("\nThe reduction uses O(1) machines and O(1) words but pays for it in rounds —")
    print("exactly the trade-off the paper's Table 1 describes.")


if __name__ == "__main__":
    main()
