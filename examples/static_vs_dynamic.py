#!/usr/bin/env python3
"""Reproduce the paper's motivating comparison: dynamic updates vs static recomputation.

For growing input sizes, measure (i) the cost of one dynamic update with the
Section 3 / Section 5 algorithms and (ii) the cost of recomputing the
solution from scratch with the static MPC baselines, and print the advantage
factors — the "shape" the paper's introduction argues for.

Run with:  python examples/static_vs_dynamic.py
"""

from __future__ import annotations

from repro.analysis import classify_growth, compare_connectivity, compare_matching
from repro.graph.generators import gnm_random_graph
from repro.graph.streams import mixed_stream


def main() -> None:
    sizes = (48, 96, 192)
    print(f"{'n':>5} {'problem':<22} {'dyn rounds':>10} {'dyn words/rd':>12} "
          f"{'static rounds':>13} {'static words':>13} {'advantage':>10}")
    dynamic_words, static_words = [], []
    for n in sizes:
        graph = gnm_random_graph(n, 2 * n, seed=n)
        stream = mixed_stream(n, 60, seed=n + 1, insert_probability=0.5, initial=graph)
        for problem, compare in (("connected components", compare_connectivity), ("maximal matching", compare_matching)):
            result = compare(graph, stream)
            print(f"{n:>5} {problem:<22} {result.dynamic_max_rounds:>10} {result.dynamic_max_words_per_round:>12} "
                  f"{result.static_rounds:>13} {result.static_total_words:>13} "
                  f"x{result.communication_advantage:>9.1f}")
            if problem == "connected components":
                dynamic_words.append(result.dynamic_max_words_per_round)
                static_words.append(result.static_total_words)

    print("\nGrowth shapes over the sweep (connected components):")
    print(f"  dynamic communication per update : {classify_growth(list(sizes), dynamic_words)}")
    print(f"  static recomputation volume      : {classify_growth(list(sizes), static_words)}")
    print("\nThe dynamic side stays ~sqrt(N) while static recomputation grows linearly —")
    print("the gap that motivates the DMPC model.")


if __name__ == "__main__":
    main()
