#!/usr/bin/env python3
"""Scenario: friendship-graph connectivity under churn (Section 5 algorithm).

Models an evolving social network: a preferential-attachment graph (skewed
degrees, like real friendship graphs) whose edges churn over time — new
friendships appear, old ones disappear, and an "adversarial" fraction of the
removals hits exactly the spanning-forest edges the algorithm relies on
(e.g. the only link bridging two communities).  The dynamic DMPC algorithm
answers "are these two users in the same community component?" after every
update while spending a constant number of rounds per update, in contrast to
re-running the static label-propagation algorithm.

Run with:  python examples/social_network_connectivity.py
"""

from __future__ import annotations

from repro.analysis import compare_connectivity
from repro.config import DMPCConfig
from repro.dynamic_mpc import DMPCConnectivity
from repro.graph.generators import preferential_attachment_graph
from repro.graph.streams import tree_edge_adversary_stream
from repro.graph.validation import connected_components, same_partition


def main() -> None:
    n, updates = 120, 200
    graph = preferential_attachment_graph(n, attach=2, seed=7)
    print(f"Social graph: {n} users, {graph.num_edges} friendships (power-law degrees)")

    config = DMPCConfig.for_graph(n, 4 * graph.num_edges)
    algorithm = DMPCConnectivity(config)
    algorithm.preprocess(graph)

    # Churn that preferentially removes the bridges the forest depends on.
    stream = tree_edge_adversary_stream(
        n, updates, lambda: algorithm.spanning_forest(), seed=11, delete_probability=0.55
    )
    stream.seed_graph(graph)

    queries = [(0, n - 1), (1, n // 2), (3, n // 3)]
    splits = 0
    for i, update in enumerate(stream):
        algorithm.apply(update)
        if i % 50 == 0:
            answers = {f"{u}-{v}": algorithm.connected(u, v) for (u, v) in queries}
            print(f"  after update {i:>3} ({update.op} {update.edge}): {algorithm.num_components()} components, "
                  f"connectivity queries {answers}")
        splits = max(splits, algorithm.num_components())

    assert same_partition(algorithm.components(), connected_components(algorithm.shadow))
    summary = algorithm.update_summary()
    print(f"\nProcessed {summary.num_updates} updates; the network split into up to {splits} components.")
    print(f"Worst-case per update: {summary.max_rounds} rounds, {summary.max_active_machines} active machines, "
          f"{summary.max_words_per_round} words per round (Table 1: O(1) / O(sqrt N) / O(sqrt N)).")

    comparison = compare_connectivity(graph, stream.history)
    print(f"\nVersus recomputing statically after every update: "
          f"x{comparison.round_advantage:.1f} fewer rounds and x{comparison.communication_advantage:.1f} "
          f"less communication per update.")


if __name__ == "__main__":
    main()
