#!/usr/bin/env python3
"""Scenario: online ad/task assignment as a dynamic matching (Sections 3, 4, 6).

Requests (one side) get matched to available slots (other side) while both
the requests and the slots keep changing: edges appear when a request becomes
eligible for a slot and disappear when either side expires — a sliding-window
update stream.  The example maintains the assignment with all three matching
algorithms of the paper and compares their quality and their DMPC costs:

* Section 3 — maximal matching (2-approximation, coordinator, O(sqrt N) words),
* Section 4 — 3/2-approximate matching (also kills length-3 augmenting paths),
* Section 6 — (2+eps)-approximate matching (no coordinator, polylog traffic).

Run with:  python examples/streaming_matching.py
"""

from __future__ import annotations

from repro.config import DMPCConfig
from repro.dynamic_mpc import DMPCMaximalMatching, DMPCThreeHalvesMatching, DMPCTwoPlusEpsMatching
from repro.graph import DynamicGraph
from repro.graph.streams import sliding_window_stream
from repro.graph.validation import maximum_matching_size


def main() -> None:
    n, updates, window = 80, 320, 120
    stream = list(sliding_window_stream(n, updates, window, seed=5))
    def config() -> DMPCConfig:
        return DMPCConfig.for_graph(n, 4 * window)

    print(f"Assignment stream: {updates} updates over {n} endpoints, at most {window} live edges\n")

    maximal = DMPCMaximalMatching(config())
    maximal.preprocess(DynamicGraph(n))
    three_halves = DMPCThreeHalvesMatching(config())
    three_halves.preprocess(DynamicGraph(n))
    two_eps = DMPCTwoPlusEpsMatching(config(), epsilon=0.25, seed=3)
    two_eps.preprocess(DynamicGraph(n))

    for algorithm in (maximal, three_halves, two_eps):
        for update in stream:
            algorithm.apply(update)
    two_eps.drain()

    optimum = maximum_matching_size(maximal.shadow)
    print(f"Maximum possible assignment at the end of the stream: {optimum} pairs\n")
    for name, algorithm, claim in (
        ("Section 3  maximal matching   ", maximal, "2-approx,   O(1) rounds, O(1) machines, O(sqrt N) words"),
        ("Section 4  3/2-approx matching", three_halves, "3/2-approx, O(1) rounds, O(n/sqrt N) machines, O(sqrt N) words"),
        ("Section 6  (2+eps) matching   ", two_eps, "(2+eps),    O(1) rounds, polylog machines and words"),
    ):
        summary = algorithm.update_summary()
        size = algorithm.matching_size()
        ratio = optimum / max(1, size)
        print(f"{name}: {size:>3} pairs (opt/|M| = {ratio:4.2f})   "
              f"worst update: {summary.max_rounds:>3} rounds, {summary.max_active_machines:>3} machines, "
              f"{summary.max_words_per_round:>5} words/round   [{claim}]")


if __name__ == "__main__":
    main()
