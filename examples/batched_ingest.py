#!/usr/bin/env python3
"""Batched ingest: apply pending updates in batches instead of one at a time.

A production deployment rarely sees one update at a time — changes queue up
while the previous ones are processed.  This example chunks a mixed update
stream with :func:`repro.graph.batched` and feeds it to
``DMPCConnectivity.apply_batch`` and ``DMPCMaximalMatching.apply_batch``,
then compares the total synchronous rounds against per-update application.
Compatible connectivity updates (touching disjoint Euler tours, or only
non-tree edge records) share a single scalar broadcast, and the matching
coordinator merges its round-robin maintenance, so the batched run finishes
in measurably fewer rounds while maintaining the exact same solution.

Run with:  python examples/batched_ingest.py
"""

from __future__ import annotations

import os
import sys

if not os.environ.get("PYTHONPATH"):
    sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.config import DMPCConfig
from repro.dynamic_mpc import DMPCConnectivity, DMPCMaximalMatching
from repro.graph import batched
from repro.graph.generators import gnm_random_graph
from repro.graph.streams import mixed_stream


def main() -> None:
    n, m, updates, batch_size = 96, 192, 240, 16
    graph = gnm_random_graph(n, m, seed=2019)
    stream = mixed_stream(n, updates, seed=2020, insert_probability=0.5, initial=graph)
    # An ingest pipeline wants throughput, not per-pair metrics detail: the
    # "fast" execution backend (repro.runtime) is a one-line config change —
    # same solutions, same round counts, several times the wall-clock speed.
    config = DMPCConfig.for_graph(n, 2 * m, backend="fast")
    print(f"Workload: G(n={n}, m={m}) plus {updates} updates, ingested {batch_size} at a time")
    print(f"Execution backend: {config.backend}\n")

    for name, factory, solution in (
        ("connectivity", lambda: DMPCConnectivity(config),
         lambda alg: sorted(sorted(c) for c in alg.components())),
        ("maximal matching", lambda: DMPCMaximalMatching(config),
         lambda alg: sorted(alg.matching())),
    ):
        sequential = factory()
        sequential.preprocess(graph)
        for update in stream:
            sequential.apply(update)

        batch = factory()
        batch.preprocess(graph)
        for chunk in batched(stream, batch_size):
            batch.apply_batch(chunk)

        assert solution(sequential) == solution(batch), "batched result diverged"
        seq_rounds = sequential.update_round_total()
        bat_rounds = batch.update_round_total()
        num_batches = len(batch.ledger.batches())
        print(f"{name}:")
        print(f"  per-update rounds : {seq_rounds}")
        print(f"  batched rounds    : {bat_rounds}  ({1 - bat_rounds / seq_rounds:.0%} saved)")
        print(f"  rounds per batch  : mean {bat_rounds / num_batches:.1f} over {num_batches} batches "
              f"of {batch_size} updates")
        print(f"  solutions         : identical\n")


if __name__ == "__main__":
    main()
