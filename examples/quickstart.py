#!/usr/bin/env python3
"""Quickstart: maintain a maximal matching and connected components dynamically.

Builds a small random graph, runs the Section 3 dynamic maximal matching and
the Section 5 dynamic connectivity on a stream of edge insertions/deletions,
and prints the per-update DMPC costs (rounds, active machines, communication
per round) next to the paper's Table 1 claims.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import build_table1_row, format_table
from repro.config import DMPCConfig
from repro.dynamic_mpc import DMPCConnectivity, DMPCMaximalMatching
from repro.graph.generators import gnm_random_graph
from repro.graph.streams import mixed_stream
from repro.graph.validation import connected_components, is_maximal_matching, same_partition


def main() -> None:
    n, m, updates = 96, 192, 150
    print(f"Workload: G(n={n}, m={m}) plus {updates} random insertions/deletions\n")

    graph = gnm_random_graph(n, m, seed=2019)
    stream = mixed_stream(n, updates, seed=2020, insert_probability=0.5, initial=graph)
    config = DMPCConfig.for_graph(n, 2 * m)
    print(f"DMPC deployment: S = {config.machine_memory} words per machine, "
          f"~{config.num_worker_machines} worker machines (N = {config.capacity_N})\n")

    # ---------------------------------------------------------- maximal matching
    matching = DMPCMaximalMatching(config)
    matching.preprocess(graph)
    matching.apply_sequence(stream)
    assert is_maximal_matching(matching.shadow, matching.matching())
    print(f"Maximal matching maintained: {matching.matching_size()} edges "
          f"(valid and maximal after every update)")

    # -------------------------------------------------------------- connectivity
    connectivity = DMPCConnectivity(DMPCConfig.for_graph(n, 2 * m))
    connectivity.preprocess(graph)
    connectivity.apply_sequence(stream)
    assert same_partition(connectivity.components(), connected_components(connectivity.shadow))
    print(f"Connected components maintained: {connectivity.num_components()} components\n")

    rows = [
        build_table1_row("maximal-matching", n, matching.shadow.num_edges, config.sqrt_N, matching.update_summary()),
        build_table1_row("connectivity", n, connectivity.shadow.num_edges, config.sqrt_N, connectivity.update_summary()),
    ]
    print("Measured per-update costs vs the paper's Table 1 claims:\n")
    print(format_table(rows))


if __name__ == "__main__":
    main()
